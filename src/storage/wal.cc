#include "storage/wal.h"

#include <chrono>
#include <cstdio>
#include <cstring>

#include "common/bytes.h"
#include "common/crc32.h"
#include "obs/event_ring.h"
#include "obs/metrics.h"

namespace nblb {

namespace {

// On-disk record framing, packed back-to-back across page boundaries:
//   [0] u32 body_len
//   [4] u32 crc32(body)
//   [8] body: u64 lsn, u8 op, u64 key, u32 payload_len, payload bytes
// Pages are allocated zeroed, so body_len == 0 terminates the log.
constexpr size_t kFrameHeaderSize = 8;
constexpr size_t kBodyFixedSize = 8 + 1 + 8 + 4;
/// Anything past this is garbage, not a record (rows are page-bounded).
constexpr uint32_t kMaxBodyLen = 1u << 20;

}  // namespace

std::string Wal::PathFor(const std::string& db_path) {
  return db_path + ".wal";
}

Wal::Wal(std::string path, WalOptions options)
    : path_(std::move(path)), options_(options) {}

Wal::~Wal() = default;

Result<std::unique_ptr<Wal>> Wal::Open(std::string path, WalOptions options) {
  std::unique_ptr<Wal> wal(new Wal(std::move(path), options));
  NBLB_RETURN_NOT_OK(wal->OpenAndScan());
  return wal;
}

Status Wal::OpenAndScan() {
  AsyncIoOptions aio;
  aio.backend = options_.io_backend;
  aio.queue_depth = options_.io_queue_depth;
  aio.io_threads = options_.io_threads;
  disk_.reset(new DiskManager(path_, options_.page_size,
                              /*latency=*/nullptr, /*direct_io=*/false, aio));
  NBLB_RETURN_NOT_OK(disk_->Open());

  uint64_t tail_bytes = 0, tail_lsn = 0, truncated = 0;
  NBLB_RETURN_NOT_OK(Scan(nullptr, &tail_bytes, &tail_lsn, &truncated));
  durable_bytes_ = tail_bytes;
  durable_lsn_ = tail_lsn;
  next_lsn_ = tail_lsn + 1;
  if (truncated > 0) {
    counters_.truncated_bytes.fetch_add(truncated,
                                        std::memory_order_relaxed);
  }

  // Load the tail page image and blank everything past the logical tail so
  // torn-record remnants can never be resurrected by a later rewrite.
  tail_page_.assign(options_.page_size, '\0');
  const uint64_t tail_off = durable_bytes_ % options_.page_size;
  if (tail_off != 0) {
    const PageId tail_id =
        static_cast<PageId>(durable_bytes_ / options_.page_size);
    NBLB_RETURN_NOT_OK(disk_->ReadPage(tail_id, tail_page_.data()));
    std::memset(tail_page_.data() + tail_off, 0,
                options_.page_size - tail_off);
  }
  return Status::OK();
}

Status Wal::Scan(const std::function<Status(const Record&)>& fn,
                 uint64_t* tail_bytes, uint64_t* tail_lsn,
                 uint64_t* truncated_bytes) const {
  const size_t page_size = options_.page_size;
  const PageId num_pages = disk_->num_pages();
  const uint64_t file_bytes = static_cast<uint64_t>(num_pages) * page_size;

  // Rolling window: pages are appended to `buf` as the parser needs more
  // bytes; the consumed prefix is dropped periodically so memory stays
  // bounded regardless of log length.
  std::string buf;
  uint64_t buf_base = 0;  // file offset of buf[0]
  PageId next_page = 0;
  uint64_t pos = 0;       // file offset of the next unparsed byte
  uint64_t last_lsn = 0;
  uint64_t valid_end = 0;

  const auto ensure = [&](uint64_t upto) -> bool {
    while (buf_base + buf.size() < upto && next_page < num_pages) {
      const size_t old = buf.size();
      buf.resize(old + page_size);
      if (!disk_->ReadPage(next_page, buf.data() + old).ok()) {
        buf.resize(old);
        return false;
      }
      ++next_page;
    }
    return buf_base + buf.size() >= upto;
  };

  for (;;) {
    if (!ensure(pos + kFrameHeaderSize)) break;
    const char* hdr = buf.data() + (pos - buf_base);
    const uint32_t body_len = DecodeFixed32(hdr);
    if (body_len == 0) break;  // zero terminator (allocation padding)
    if (body_len < kBodyFixedSize || body_len > kMaxBodyLen) break;
    if (!ensure(pos + kFrameHeaderSize + body_len)) break;  // torn tail
    hdr = buf.data() + (pos - buf_base);  // ensure() may have reallocated
    const char* body = hdr + kFrameHeaderSize;
    if (DecodeFixed32(hdr + 4) != Crc32(body, body_len)) break;

    Record rec;
    rec.lsn = DecodeFixed64(body);
    rec.op = static_cast<Op>(static_cast<uint8_t>(body[8]));
    rec.key = DecodeFixed64(body + 9);
    const uint32_t payload_len = DecodeFixed32(body + 17);
    if (payload_len != body_len - kBodyFixedSize) break;
    if (rec.op != Op::kPut && rec.op != Op::kDelete) break;
    if (rec.lsn <= last_lsn) break;  // LSNs are strictly increasing
    rec.payload = Slice(body + kBodyFixedSize, payload_len);
    if (fn != nullptr) {
      NBLB_RETURN_NOT_OK(fn(rec));
    }
    last_lsn = rec.lsn;
    pos += kFrameHeaderSize + body_len;
    valid_end = pos;

    // Drop consumed pages from the window (keep the page `pos` is on).
    const uint64_t keep_from = (pos / page_size) * page_size;
    if (keep_from > buf_base) {
      buf.erase(0, static_cast<size_t>(keep_from - buf_base));
      buf_base = keep_from;
    }
  }

  *tail_bytes = valid_end;
  *tail_lsn = last_lsn;
  *truncated_bytes = file_bytes > valid_end ? file_bytes - valid_end : 0;
  return Status::OK();
}

Result<uint64_t> Wal::Append(Op op, uint64_t key, const Slice& payload) {
  if (!sticky_error_.ok()) {
    counters_.append_failures.fetch_add(1, std::memory_order_relaxed);
    return sticky_error_;
  }
  if (payload.size() > kMaxBodyLen - kBodyFixedSize) {
    return Status::InvalidArgument("WAL payload too large");
  }
  const uint64_t lsn = next_lsn_++;
  if (pending_.empty()) pending_first_lsn_ = lsn;

  const uint32_t body_len =
      static_cast<uint32_t>(kBodyFixedSize + payload.size());
  char body_fixed[kBodyFixedSize];
  EncodeFixed64(body_fixed, lsn);
  body_fixed[8] = static_cast<char>(op);
  EncodeFixed64(body_fixed + 9, key);
  EncodeFixed32(body_fixed + 17, static_cast<uint32_t>(payload.size()));
  uint32_t crc = Crc32(body_fixed, kBodyFixedSize);
  crc = Crc32(payload.data(), payload.size(), crc);

  char hdr[kFrameHeaderSize];
  EncodeFixed32(hdr, body_len);
  EncodeFixed32(hdr + 4, crc);
  pending_.append(hdr, kFrameHeaderSize);
  pending_.append(body_fixed, kBodyFixedSize);
  pending_.append(payload.data(), payload.size());

  counters_.appends.fetch_add(1, std::memory_order_relaxed);
  counters_.bytes_appended.fetch_add(kFrameHeaderSize + body_len,
                                     std::memory_order_relaxed);
  return lsn;
}

Status Wal::Commit() {
  if (!sticky_error_.ok()) return sticky_error_;
  if (pending_.empty()) return Status::OK();
  const auto commit_start = std::chrono::steady_clock::now();

  const size_t page_size = options_.page_size;
  const uint64_t tail_off = durable_bytes_ % page_size;
  const PageId first_id = static_cast<PageId>(durable_bytes_ / page_size);
  const uint64_t new_bytes = durable_bytes_ + pending_.size();
  const PageId last_id = static_cast<PageId>((new_bytes - 1) / page_size);
  const size_t npages = last_id - first_id + 1;

  const auto fail = [&](Status st) {
    sticky_error_ = st;
    counters_.append_failures.fetch_add(1, std::memory_order_relaxed);
    RecordFlightEvent(FlightEvent::kWalAppendError, first_id,
                      pending_.size());
    return st;
  };

  // Extend the file to cover every page of this commit. The zero fill is
  // immediately overwritten below, but it guarantees the scanner always
  // sees zeroes (a terminator) past the data we actually wrote.
  if (last_id >= disk_->num_pages()) {
    auto grown = disk_->AllocatePages(last_id + 1 - disk_->num_pages());
    if (!grown.ok()) return fail(grown.status());
  }

  // Page images for the whole commit, contiguous so SubmitWrites issues one
  // vectored write. Image 0 re-covers the tail page: its durable prefix is
  // rewritten bit-identical, so a torn rewrite can only damage unacked
  // bytes.
  std::string images(npages * page_size, '\0');
  std::memcpy(images.data(), tail_page_.data(), tail_off);
  std::memcpy(images.data() + tail_off, pending_.data(), pending_.size());

  std::vector<PageId> ids(npages);
  std::vector<const char*> srcs(npages);
  for (size_t k = 0; k < npages; ++k) {
    ids[k] = first_id + static_cast<PageId>(k);
    srcs[k] = images.data() + k * page_size;
  }
  DiskManager::IoTicket ticket;
  Status st = disk_->SubmitWrites(ids.data(), srcs.data(), npages, &ticket);
  if (st.ok()) st = disk_->WaitWrites(&ticket);
  if (st.ok()) st = disk_->Sync();
  if (!st.ok()) return fail(st);

  durable_bytes_ = new_bytes;
  durable_lsn_ = next_lsn_ - 1;
  std::memcpy(tail_page_.data(), images.data() + (npages - 1) * page_size,
              page_size);
  pending_.clear();
  pending_first_lsn_ = 0;
  counters_.commits.fetch_add(1, std::memory_order_relaxed);
  counters_.commit_pages.fetch_add(npages, std::memory_order_relaxed);
  counters_.commit_micros.fetch_add(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - commit_start)
          .count(),
      std::memory_order_relaxed);
  return Status::OK();
}

Status Wal::Replay(uint64_t from_lsn,
                   const std::function<Status(const Record&)>& fn) const {
  uint64_t tail_bytes = 0, tail_lsn = 0, truncated = 0;
  return Scan(
      [&](const Record& rec) -> Status {
        if (rec.lsn <= from_lsn) return Status::OK();
        counters_.replayed_records.fetch_add(1, std::memory_order_relaxed);
        return fn(rec);
      },
      &tail_bytes, &tail_lsn, &truncated);
}

Status Wal::Reset() {
  NBLB_RETURN_NOT_OK(disk_->Close());
  disk_.reset();
  std::remove(path_.c_str());
  pending_.clear();
  pending_first_lsn_ = 0;
  durable_bytes_ = 0;
  durable_lsn_ = next_lsn_ - 1;
  sticky_error_ = Status::OK();

  AsyncIoOptions aio;
  aio.backend = options_.io_backend;
  aio.queue_depth = options_.io_queue_depth;
  aio.io_threads = options_.io_threads;
  disk_.reset(new DiskManager(path_, options_.page_size,
                              /*latency=*/nullptr, /*direct_io=*/false, aio));
  Status st = disk_->Open();
  if (!st.ok()) {
    sticky_error_ = st;
    return st;
  }
  tail_page_.assign(options_.page_size, '\0');
  counters_.resets.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

void Wal::RegisterMetrics(MetricsRegistry* registry,
                          const std::string& prefix) const {
  registry->RegisterCounter(prefix + "appends", &counters_.appends);
  registry->RegisterCounter(prefix + "commits", &counters_.commits);
  registry->RegisterCounter(prefix + "bytes_appended",
                            &counters_.bytes_appended);
  registry->RegisterCounter(prefix + "commit_pages", &counters_.commit_pages);
  registry->RegisterCounter(prefix + "commit_micros", &counters_.commit_micros);
  registry->RegisterCounter(prefix + "replayed_records",
                            &counters_.replayed_records);
  registry->RegisterCounter(prefix + "truncated_bytes",
                            &counters_.truncated_bytes);
  registry->RegisterCounter(prefix + "append_failures",
                            &counters_.append_failures);
  registry->RegisterCounter(prefix + "resets", &counters_.resets);
}

}  // namespace nblb
