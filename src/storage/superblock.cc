#include "storage/superblock.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/bytes.h"
#include "common/crc32.h"

namespace nblb {

namespace {

constexpr uint32_t kSuperblockMagic = 0x4e425342;  // "NBSB"
constexpr uint32_t kSuperblockFormat = 1;
constexpr size_t kSlotSize = 4096;
constexpr size_t kSlotHeaderSize = 16;  // magic, format, payload_len, crc

void AppendU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}
void AppendU16(std::string* out, uint16_t v) {
  char buf[2];
  EncodeFixed16(buf, v);
  out->append(buf, 2);
}
void AppendU32(std::string* out, uint32_t v) {
  char buf[4];
  EncodeFixed32(buf, v);
  out->append(buf, 4);
}
void AppendU64(std::string* out, uint64_t v) {
  char buf[8];
  EncodeFixed64(buf, v);
  out->append(buf, 8);
}

/// Bounds-checked sequential reader over a slot payload.
struct Cursor {
  const char* p;
  size_t left;
  bool ok = true;

  bool Take(size_t n, const char** out) {
    if (!ok || left < n) {
      ok = false;
      return false;
    }
    *out = p;
    p += n;
    left -= n;
    return true;
  }
  uint8_t U8() {
    const char* b;
    return Take(1, &b) ? static_cast<uint8_t>(*b) : 0;
  }
  uint16_t U16() {
    const char* b;
    return Take(2, &b) ? DecodeFixed16(b) : 0;
  }
  uint32_t U32() {
    const char* b;
    return Take(4, &b) ? DecodeFixed32(b) : 0;
  }
  uint64_t U64() {
    const char* b;
    return Take(8, &b) ? DecodeFixed64(b) : 0;
  }
};

std::string EncodePayload(const SuperblockData& d) {
  std::string out;
  AppendU64(&out, d.version);
  AppendU64(&out, d.checkpoint_lsn);
  AppendU32(&out, d.page_size);
  AppendU32(&out, d.num_pages);
  AppendU32(&out, d.heap_first_page);
  AppendU32(&out, d.btree_meta_page);
  AppendU32(&out, d.semid_partition_bits);
  AppendU8(&out, d.clean_shutdown ? 1 : 0);
  AppendU8(&out, d.reuse_free_slots ? 1 : 0);
  AppendU8(&out, d.enable_index_cache ? 1 : 0);
  AppendU32(&out, static_cast<uint32_t>(d.key_columns.size()));
  for (uint32_t c : d.key_columns) AppendU32(&out, c);
  AppendU32(&out, static_cast<uint32_t>(d.cached_columns.size()));
  for (uint32_t c : d.cached_columns) AppendU32(&out, c);
  AppendU32(&out, static_cast<uint32_t>(d.columns.size()));
  for (const Column& col : d.columns) {
    AppendU8(&out, static_cast<uint8_t>(col.type));
    AppendU32(&out, static_cast<uint32_t>(col.length));
    AppendU16(&out, static_cast<uint16_t>(col.name.size()));
    out.append(col.name);
  }
  return out;
}

bool DecodePayload(const char* payload, size_t len, SuperblockData* d) {
  Cursor c{payload, len};
  d->version = c.U64();
  d->checkpoint_lsn = c.U64();
  d->page_size = c.U32();
  d->num_pages = c.U32();
  d->heap_first_page = c.U32();
  d->btree_meta_page = c.U32();
  d->semid_partition_bits = c.U32();
  d->clean_shutdown = c.U8() != 0;
  d->reuse_free_slots = c.U8() != 0;
  d->enable_index_cache = c.U8() != 0;
  const uint32_t nkey = c.U32();
  if (!c.ok || nkey > 256) return false;
  d->key_columns.resize(nkey);
  for (uint32_t i = 0; i < nkey; ++i) d->key_columns[i] = c.U32();
  const uint32_t ncached = c.U32();
  if (!c.ok || ncached > 256) return false;
  d->cached_columns.resize(ncached);
  for (uint32_t i = 0; i < ncached; ++i) d->cached_columns[i] = c.U32();
  const uint32_t ncols = c.U32();
  if (!c.ok || ncols > 256) return false;
  d->columns.resize(ncols);
  for (uint32_t i = 0; i < ncols; ++i) {
    Column& col = d->columns[i];
    col.type = static_cast<TypeId>(c.U8());
    col.length = c.U32();
    const uint16_t name_len = c.U16();
    const char* name;
    if (!c.Take(name_len, &name)) return false;
    col.name.assign(name, name_len);
  }
  return c.ok;
}

/// Validates one raw slot; fills `d` and returns true iff it is intact.
bool DecodeSlot(const char* slot, SuperblockData* d) {
  if (DecodeFixed32(slot) != kSuperblockMagic) return false;
  if (DecodeFixed32(slot + 4) != kSuperblockFormat) return false;
  const uint32_t payload_len = DecodeFixed32(slot + 8);
  if (payload_len > kSlotSize - kSlotHeaderSize) return false;
  if (DecodeFixed32(slot + 12) !=
      Crc32(slot + kSlotHeaderSize, payload_len)) {
    return false;
  }
  return DecodePayload(slot + kSlotHeaderSize, payload_len, d);
}

}  // namespace

std::string Superblock::PathFor(const std::string& db_path) {
  return db_path + ".sb";
}

Status Superblock::Write(const std::string& sb_path,
                         const SuperblockData& data) {
  const std::string payload = EncodePayload(data);
  if (payload.size() > kSlotSize - kSlotHeaderSize) {
    return Status::InvalidArgument("superblock payload too large: " +
                                   std::to_string(payload.size()));
  }
  std::string slot(kSlotSize, '\0');
  EncodeFixed32(slot.data(), kSuperblockMagic);
  EncodeFixed32(slot.data() + 4, kSuperblockFormat);
  EncodeFixed32(slot.data() + 8, static_cast<uint32_t>(payload.size()));
  EncodeFixed32(slot.data() + 12, Crc32(payload.data(), payload.size()));
  std::memcpy(slot.data() + kSlotHeaderSize, payload.data(), payload.size());

  const int fd = ::open(sb_path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IOError("open failed for " + sb_path + ": " +
                           std::strerror(errno));
  }
  const off_t off =
      static_cast<off_t>((data.version % 2) * kSlotSize);
  size_t done = 0;
  while (done < kSlotSize) {
    const ssize_t n = ::pwrite(fd, slot.data() + done, kSlotSize - done,
                               off + static_cast<off_t>(done));
    if (n <= 0) {
      ::close(fd);
      return Status::IOError("superblock write failed: " +
                             std::string(std::strerror(errno)));
    }
    done += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return Status::IOError("superblock fsync failed");
  }
  ::close(fd);
  return Status::OK();
}

Result<SuperblockData> Superblock::Read(const std::string& sb_path) {
  const int fd = ::open(sb_path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no superblock at " + sb_path);
    }
    return Status::IOError("open failed for " + sb_path + ": " +
                           std::strerror(errno));
  }
  char slots[2 * kSlotSize];
  std::memset(slots, 0, sizeof(slots));
  size_t done = 0;
  while (done < sizeof(slots)) {
    const ssize_t n = ::pread(fd, slots + done, sizeof(slots) - done,
                              static_cast<off_t>(done));
    if (n < 0) {
      ::close(fd);
      return Status::IOError("superblock read failed");
    }
    if (n == 0) break;  // short file: missing slot bytes stay zero (invalid)
    done += static_cast<size_t>(n);
  }
  ::close(fd);

  SuperblockData a, b;
  const bool a_ok = DecodeSlot(slots, &a);
  const bool b_ok = DecodeSlot(slots + kSlotSize, &b);
  if (!a_ok && !b_ok) {
    return Status::Corruption("no valid superblock slot in " + sb_path);
  }
  if (a_ok && b_ok) return a.version >= b.version ? a : b;
  return a_ok ? a : b;
}

}  // namespace nblb
