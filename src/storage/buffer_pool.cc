#include "storage/buffer_pool.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <thread>

#include "common/logging.h"
#include "common/rng.h"
#include "obs/event_ring.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace nblb {

// ---------------------------------------------------------------------------
// PageGuard
// ---------------------------------------------------------------------------

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    bp_ = other.bp_;
    id_ = other.id_;
    data_ = other.data_;
    latch_ = other.latch_;
    dirty_ = other.dirty_;
    other.bp_ = nullptr;
    other.data_ = nullptr;
    other.latch_ = nullptr;
    other.dirty_ = false;
  }
  return *this;
}

void PageGuard::Release() {
  if (bp_ != nullptr) {
    bp_->ReleaseGuard(data_, dirty_);
    bp_ = nullptr;
    data_ = nullptr;
    latch_ = nullptr;
    dirty_ = false;
  }
}

// ---------------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------------

BufferPool::BufferPool(DiskManager* disk, size_t num_frames, size_t num_stripes)
    : disk_(disk), num_frames_(num_frames), page_size_(disk->page_size()) {
  NBLB_CHECK(num_frames > 0);
  if ((page_size_ & (page_size_ - 1)) == 0) {
    while ((size_t{1} << page_shift_) < page_size_) ++page_shift_;
  }

  // 4096-aligned arena: with a 4 KiB-multiple page size every frame buffer is
  // O_DIRECT-transfer aligned, so vectored miss reads land straight in frames.
  void* mem = nullptr;
  NBLB_CHECK(::posix_memalign(&mem, 4096, num_frames * page_size_) == 0);
  arena_ = static_cast<char*>(mem);
  frames_.reset(new Frame[num_frames]);

  size_t s = num_stripes;
  if (s == 0) {
    // One stripe per 64 frames, at most 64: tiny pools (unit tests with 2-4
    // frames) get one stripe and therefore exact global CLOCK behaviour.
    s = 1;
    while (s * 2 <= num_frames / 64 && s * 2 <= 64) s *= 2;
  }
  size_t pow2 = 1;
  while (pow2 * 2 <= s) pow2 *= 2;
  s = pow2;
  while (s > num_frames) s /= 2;
  num_stripes_ = s;
  stripe_mask_ = s - 1;
  stripes_.reset(new Stripe[s]);

  const size_t q = num_frames / s;
  const size_t r = num_frames % s;
  uint32_t begin = 0;
  for (size_t i = 0; i < s; ++i) {
    Stripe& st = stripes_[i];
    const uint32_t count = static_cast<uint32_t>(q + (i < r ? 1 : 0));
    st.begin = begin;
    st.end = begin + count;
    begin = st.end;
    size_t tsize = 8;
    while (tsize < 2 * static_cast<size_t>(count)) tsize *= 2;
    st.slot_key.reset(new std::atomic<PageId>[tsize]);
    st.slot_frame.reset(new std::atomic<uint32_t>[tsize]);
    for (size_t k = 0; k < tsize; ++k) {
      st.slot_key[k].store(kInvalidPageId, std::memory_order_relaxed);
      st.slot_frame[k].store(kNoFrame, std::memory_order_relaxed);
    }
    st.table_mask = tsize - 1;
    st.free_list.reserve(count);
    // Push descending so frames are handed out in index order (deterministic
    // victim order for the unit tests, like the seed pool's free list).
    for (uint32_t f = st.end; f > st.begin; --f) st.free_list.push_back(f - 1);
    for (uint32_t f = st.begin; f < st.end; ++f) {
      frames_[f].data = arena_ + static_cast<size_t>(f) * page_size_;
    }
  }
}

BufferPool::~BufferPool() {
  StopFlusher();
  // Best effort write-back of dirty pages.
  (void)FlushAll();
  std::free(flush_staging_);
  std::free(arena_);
}

// ---------------------------------------------------------------------------
// Stripe page table (linear probing, backshift deletion)
// ---------------------------------------------------------------------------

uint64_t BufferPool::Mix(PageId id) { return SplitMix64(id); }

uint32_t BufferPool::TableFind(const Stripe& st, PageId id) const {
  // Slot hash uses the high mixer bits; the stripe choice used the low ones.
  size_t i = (Mix(id) >> 32) & st.table_mask;
  for (;;) {
    const PageId key = st.slot_key[i].load(std::memory_order_relaxed);
    if (key == id) return st.slot_frame[i].load(std::memory_order_relaxed);
    if (key == kInvalidPageId) return kNoFrame;
    i = (i + 1) & st.table_mask;
  }
}

void BufferPool::TableInsert(Stripe& st, PageId id, uint32_t frame) {
  size_t i = (Mix(id) >> 32) & st.table_mask;
  while (st.slot_key[i].load(std::memory_order_relaxed) != kInvalidPageId) {
    NBLB_DCHECK(st.slot_key[i].load(std::memory_order_relaxed) != id);
    i = (i + 1) & st.table_mask;
  }
  // Frame before key: an optimistic prober that matches the key must see a
  // plausible frame (a torn pair is caught by its frame validation anyway).
  st.slot_frame[i].store(frame, std::memory_order_relaxed);
  st.slot_key[i].store(id, std::memory_order_relaxed);
}

void BufferPool::TableErase(Stripe& st, PageId id) {
  size_t i = (Mix(id) >> 32) & st.table_mask;
  for (;;) {
    const PageId key = st.slot_key[i].load(std::memory_order_relaxed);
    if (key == id) break;
    if (key == kInvalidPageId) return;
    i = (i + 1) & st.table_mask;
  }
  size_t hole = i;
  st.slot_key[hole].store(kInvalidPageId, std::memory_order_relaxed);
  size_t j = hole;
  for (;;) {
    j = (j + 1) & st.table_mask;
    const PageId key = st.slot_key[j].load(std::memory_order_relaxed);
    if (key == kInvalidPageId) return;
    const size_t ideal = (Mix(key) >> 32) & st.table_mask;
    // Shift back iff the hole lies cyclically within [ideal, j).
    if (((j - ideal) & st.table_mask) >= ((j - hole) & st.table_mask)) {
      st.slot_frame[hole].store(
          st.slot_frame[j].load(std::memory_order_relaxed),
          std::memory_order_relaxed);
      st.slot_key[hole].store(key, std::memory_order_relaxed);
      st.slot_key[j].store(kInvalidPageId, std::memory_order_relaxed);
      hole = j;
    }
  }
}

bool BufferPool::Contains(const std::vector<PageId>& v, PageId id) {
  return std::find(v.begin(), v.end(), id) != v.end();
}

// ---------------------------------------------------------------------------
// Frame state transitions
// ---------------------------------------------------------------------------

void BufferPool::UnpinFrame(Frame& f, bool dirty) {
  if (!dirty) {
    // Clean unpin: one unconditional RMW. The release half publishes the
    // pinner's reads-era ordering to the next evictor via the state word's
    // release sequence.
    const uint64_t prev = f.state.fetch_sub(1, std::memory_order_release);
    NBLB_CHECK_MSG((prev & kPinMask) > 0, "unpin of unpinned page");
    return;
  }
  uint64_t s = f.state.load(std::memory_order_relaxed);
  for (;;) {
    NBLB_CHECK_MSG((s & kPinMask) > 0, "unpin of unpinned page");
    uint64_t ns = s - 1;
    if (dirty) ns |= kDirtyBit;
    // One CAS covers both the pin drop and the dirty transfer, so a victim
    // scan can never observe pin==0 without the dirty bit it must honor.
    // acq_rel: release publishes this pinner's page writes to the next
    // evictor; acquire keeps the guard's lifetime ordered after them.
    if (f.state.compare_exchange_weak(s, ns, std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
      return;
    }
  }
}

uint64_t BufferPool::PinFrame(Frame& f, bool reference) {
  uint64_t s = f.state.load(std::memory_order_relaxed);
  for (;;) {
    NBLB_CHECK_MSG((s & kPinMask) != kPinMask, "pin count overflow");
    uint64_t ns = s + 1;
    if (reference && ((s & kUsageMask) >> kUsageShift) < kUsageMax) {
      ns += kUsageOne;
    }
    if (f.state.compare_exchange_weak(s, ns, std::memory_order_acquire,
                                      std::memory_order_relaxed)) {
      return s;
    }
  }
}

void BufferPool::ReleaseGuard(char* data, bool dirty) {
  UnpinFrame(frames_[FrameIndexOf(data)], dirty);
}

Result<BufferPool::Claim> BufferPool::ClaimFrame(Stripe& st, PageId id) {
  Claim c;
  c.id = id;
  if (!st.free_list.empty()) {
    c.frame = st.free_list.back();
    st.free_list.pop_back();
    Frame& f = frames_[c.frame];
    f.state.store(kClaimedState, std::memory_order_relaxed);
    f.id.store(id, std::memory_order_relaxed);
    TableInsert(st, id, c.frame);
    return c;
  }
  const uint32_t n = st.end - st.begin;
  // kUsageMax+1 full sweeps drain every usage count; one more must then find
  // an unpinned frame if one exists.
  for (uint64_t step = 0; step < (kUsageMax + 2) * uint64_t{n}; ++step) {
    const uint32_t idx = st.begin + st.hand;
    Frame& f = frames_[idx];
    st.hand = (st.hand + 1) % n;
    uint64_t s = f.state.load(std::memory_order_relaxed);
    if ((s & kPinMask) != 0 || (s & kIoBit) != 0) continue;
    if ((s & kValidBit) != 0 && (s & kUsageMask) != 0) {
      // Sweep decrement is exclusive (we hold the stripe mutex; hits only
      // ever increment), so a plain subtract cannot underflow.
      f.state.fetch_sub(kUsageOne, std::memory_order_relaxed);
      continue;
    }
    // Pins and unpins are lock-free (TryOptimisticHit does not take the
    // stripe mutex we hold) — this CAS is exactly what catches them: an
    // optimistic pin bumps the pin count and usage away from the expected
    // value, the CAS fails, and the sweep revisits. Do not weaken it to a
    // store or drop the usage==0 precondition.
    if (!f.state.compare_exchange_strong(s, kClaimedState,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
      continue;
    }
    if ((s & kValidBit) != 0) {
      const PageId old = f.id.load(std::memory_order_relaxed);
      TableErase(st, old);
      st.stats.evictions.fetch_add(1, std::memory_order_relaxed);
      if ((s & kDirtyBit) != 0) {
        // Write-back happens outside the stripe lock; park the old id on the
        // flushing list so a re-fetch cannot read stale bytes meanwhile.
        c.old_id = old;
        c.writeback = true;
        st.flushing.push_back(old);
      }
    }
    c.frame = idx;
    f.id.store(id, std::memory_order_relaxed);
    TableInsert(st, id, c.frame);
    return c;
  }
  return Status::ResourceExhausted("all buffer pool frames are pinned (stripe of page " +
                                   std::to_string(id) + ")");
}

Status BufferPool::WriteBack(Stripe& st, const Claim& c) {
  // NOTE: by the time this runs the displaced page's mapping is gone and
  // waiters may already be pinned on the frame for the NEW page, so a write
  // failure cannot restore the old page to the pool — its last version is
  // lost and the caller sees the IOError. Unlike the seed pool this is not
  // retriable; acceptable because WritePage never extends the file (pages
  // are preallocated, so no ENOSPC-style transient failures — a failure
  // here is a real device fault).
  Frame& f = frames_[c.frame];
  Status s = disk_->WritePage(c.old_id, f.data);
  RemoveFlushing(st, c.old_id);
  if (s.ok()) st.stats.dirty_writebacks.fetch_add(1, std::memory_order_relaxed);
  return s;
}

void BufferPool::RemoveFlushing(Stripe& st, PageId id) {
  std::lock_guard<std::mutex> lk(st.mu);
  auto it = std::find(st.flushing.begin(), st.flushing.end(), id);
  NBLB_DCHECK(it != st.flushing.end());
  *it = st.flushing.back();
  st.flushing.pop_back();
}

Status BufferPool::WriteBackBatch(std::vector<Claim>* claims) {
  std::vector<Claim*> wb;
  for (Claim& c : *claims) {
    if (c.writeback) wb.push_back(&c);
  }
  if (wb.empty()) return Status::OK();
  // A single victim has nothing to overlap; the sync path also serves as
  // the per-page baseline under the sync_writeback knob.
  if (wb.size() == 1 || sync_writeback_.load(std::memory_order_relaxed)) {
    Status first_error;
    for (Claim* c : wb) {
      Status ws = WriteBack(StripeFor(c->old_id), *c);
      c->writeback = false;
      if (!ws.ok() && first_error.ok()) first_error = ws;
    }
    return first_error;
  }
  // The claimed frames are exclusively ours (io bit set, displaced pages
  // already unmapped), so the group writes straight from frame memory —
  // no snapshot needed. Sort by the DISPLACED page id so contiguous dirty
  // victims coalesce into vectored runs.
  std::sort(wb.begin(), wb.end(), [](const Claim* a, const Claim* b) {
    return a->old_id < b->old_id;
  });
  std::vector<PageId> ids;
  std::vector<const char*> srcs;
  ids.reserve(wb.size());
  srcs.reserve(wb.size());
  for (Claim* c : wb) {
    ids.push_back(c->old_id);
    srcs.push_back(frames_[c->frame].data);
  }
  DiskManager::IoTicket ticket;
  Status ws = disk_->SubmitWrites(ids.data(), srcs.data(), ids.size(),
                                  &ticket);
  if (ws.ok()) ws = disk_->WaitWrites(&ticket);
  // Clear the flushing entries whether or not the group succeeded: the
  // mappings are gone and a failed victim's last version is lost either
  // way (see the NOTE on WriteBack) — a wedged flushing entry would hang
  // every future fetch of that page on top of it.
  for (Claim* c : wb) {
    Stripe& st = StripeFor(c->old_id);
    RemoveFlushing(st, c->old_id);
    c->writeback = false;
    if (ws.ok()) {
      st.stats.dirty_writebacks.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return ws;
}

Status BufferPool::FlushTargets(std::vector<FlushTarget>* targets,
                                size_t* flushed, size_t* runs) {
  *flushed = 0;
  *runs = 0;
  if (targets->empty()) return Status::OK();
  // Sorting makes contiguous dirty pages adjacent, so the submit path
  // coalesces them into vectored runs (and the sync baseline at least
  // writes in file order).
  std::sort(targets->begin(), targets->end(),
            [](const FlushTarget& a, const FlushTarget& b) {
              return a.id < b.id;
            });
  if (sync_writeback_.load(std::memory_order_relaxed)) {
    Status first_error;
    for (FlushTarget& t : *targets) {
      Status ws;
      {
        // Hold the frame's cache latch so latch-disciplined content
        // writers never overlap the flush read (see FlushPage).
        LatchGuard latch(t.frame->cache_latch);
        ws = disk_->WritePage(t.id, t.frame->data);
      }
      if (t.claimed) {
        // Drop the flusher's io-claim now that the bytes left the frame.
        t.frame->state.fetch_and(~kIoBit, std::memory_order_release);
      }
      if (ws.ok()) {
        ++*flushed;
        ++*runs;  // per-page writes: every page is its own "run"
      } else {
        t.frame->state.fetch_or(kDirtyBit, std::memory_order_relaxed);
        RecordFlightEvent(FlightEvent::kRedirty, 1);
        if (first_error.ok()) first_error = ws;
      }
    }
    return first_error;
  }
  if (flush_staging_ == nullptr) {
    void* mem = nullptr;
    NBLB_CHECK(::posix_memalign(&mem, 4096,
                                kFlushStagingPages * page_size_) == 0);
    flush_staging_ = static_cast<char*>(mem);
  }
  Status first_error;
  for (size_t base = 0; base < targets->size(); base += kFlushStagingPages) {
    const size_t count =
        std::min(kFlushStagingPages, targets->size() - base);
    std::vector<PageId> ids(count);
    std::vector<const char*> srcs(count);
    size_t chunk_runs = 1;
    for (size_t k = 0; k < count; ++k) {
      FlushTarget& t = (*targets)[base + k];
      char* slot = flush_staging_ + k * page_size_;
      {
        // Snapshot under the cache latch: the bytes that reach the device
        // are latch-consistent even though the write itself flies with no
        // latch held — the FlushPage discipline, one memcpy removed from
        // the device. A content write that lands after the snapshot
        // re-marks the frame dirty (unpin-dirty) and is flushed next pass.
        LatchGuard latch(t.frame->cache_latch);
        std::memcpy(slot, t.frame->data, page_size_);
      }
      if (t.claimed) {
        // Release the flusher's io-claim the moment the bytes are staged:
        // writers blocked in WaitForLoad stall only for the memcpy, never
        // for the device write.
        t.frame->state.fetch_and(~kIoBit, std::memory_order_release);
      }
      ids[k] = t.id;
      srcs[k] = slot;
      if (k > 0 && ids[k] != ids[k - 1] + 1) ++chunk_runs;
    }
    DiskManager::IoTicket ticket;
    Status ws = disk_->SubmitWrites(ids.data(), srcs.data(), count, &ticket);
    if (ws.ok()) ws = disk_->WaitWrites(&ticket);
    if (ws.ok()) {
      *flushed += count;
      *runs += chunk_runs;
    } else {
      // Which pages of the chunk landed is unknown; re-mark them ALL dirty
      // so the next pass retries (a clean page flushed twice is harmless —
      // the frames stayed resident, so nothing is lost).
      for (size_t k = 0; k < count; ++k) {
        (*targets)[base + k].frame->state.fetch_or(
            kDirtyBit, std::memory_order_relaxed);
      }
      RecordFlightEvent(FlightEvent::kRedirty, count);
      if (first_error.ok()) first_error = ws;
    }
  }
  return first_error;
}

void BufferPool::AbortClaim(Stripe& st, const Claim& c, bool transient) {
  if (transient) RecordFlightEvent(FlightEvent::kTransientAbort, c.id);
  Frame& f = frames_[c.frame];
  std::lock_guard<std::mutex> lk(st.mu);
  TableErase(st, c.id);
  uint64_t s = f.state.load(std::memory_order_relaxed);
  for (;;) {
    // Keep the pins (the failed loader's guard and any waiters still hold
    // them); clear valid+io and raise failed so waiters bail out (with the
    // transient marker when no device error was involved). The frame
    // becomes claimable again once the pins drain.
    const uint64_t ns =
        (s & kPinMask) | kFailedBit | (transient ? kTransientBit : 0);
    if (f.state.compare_exchange_weak(s, ns, std::memory_order_release,
                                      std::memory_order_relaxed)) {
      break;
    }
  }
  f.id.store(kInvalidPageId, std::memory_order_relaxed);
}

Status BufferPool::WaitForLoad(Frame& f) {
  uint64_t s = f.state.load(std::memory_order_acquire);
  int spins = 0;
  while ((s & kIoBit) != 0) {
    if (++spins >= 64) {
      std::this_thread::yield();
      spins = 0;
    }
    s = f.state.load(std::memory_order_acquire);
  }
  if ((s & kFailedBit) != 0) {
    // A transiently aborted claim is backpressure (the loading batch ran
    // out of frames elsewhere), not a device fault: waiters retry, the
    // batch-read consumers halve their chunks, nobody reports a phantom
    // IO error.
    if ((s & kTransientBit) != 0) {
      RecordFlightEvent(FlightEvent::kTransientWait,
                        f.id.load(std::memory_order_relaxed));
      return Status::ResourceExhausted(
          "concurrent page load aborted under capacity pressure");
    }
    return Status::IOError("concurrent page load failed");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Fetch / allocate
// ---------------------------------------------------------------------------

bool BufferPool::TryOptimisticHit(Stripe& st, uint64_t h, PageId id,
                                  PageGuard* out) {
  // Probe the atomic table slots and pin with a single CAS, no stripe
  // mutex. Anything unusual — empty slot, probe-length cap, frame mid-load,
  // lost CAS race — returns false so the caller falls back to the locked
  // path, which resolves every case correctly. The post-pin id recheck
  // closes the ABA window where the frame was evicted and reloaded between
  // our state read and the CAS.
  size_t i = (h >> 32) & st.table_mask;
  for (int probes = 0; probes < 16; ++probes, i = (i + 1) & st.table_mask) {
    const PageId key = st.slot_key[i].load(std::memory_order_relaxed);
    if (key == kInvalidPageId) return false;
    if (key != id) continue;
    const uint32_t fidx = st.slot_frame[i].load(std::memory_order_relaxed);
    if (fidx >= num_frames_) return false;  // torn pair
    Frame& f = frames_[fidx];
    uint64_t s = f.state.load(std::memory_order_relaxed);
    while ((s & (kValidBit | kIoBit | kFailedBit)) == kValidBit &&
           f.id.load(std::memory_order_relaxed) == id) {
      NBLB_CHECK_MSG((s & kPinMask) != kPinMask, "pin count overflow");
      uint64_t ns = s + 1;
      if (((s & kUsageMask) >> kUsageShift) < kUsageMax) ns += kUsageOne;
      if (f.state.compare_exchange_weak(s, ns, std::memory_order_acquire,
                                        std::memory_order_relaxed)) {
        if (f.id.load(std::memory_order_relaxed) != id) {
          // ABA: same state bits, different page. Undo; take the lock.
          UnpinFrame(f, false);
          return false;
        }
        // Sloppy increment (atomic load + store, no lock prefix): exact
        // whenever the pool is quiesced, may undercount marginally when
        // two optimistic hits on one stripe collide — a diagnostic-grade
        // trade that keeps the hot path at two locked RMWs (pin, unpin).
        st.stats.hits.store(
            st.stats.hits.load(std::memory_order_relaxed) + 1,
            std::memory_order_relaxed);
        *out = PageGuard(this, id, f.data, &f.cache_latch);
        return true;
      }
    }
    return false;
  }
  return false;
}

Result<PageGuard> BufferPool::FetchPage(PageId id) {
  if (id >= disk_->num_pages()) {
    return Status::OutOfRange("fetch of unallocated page " + std::to_string(id));
  }
  const uint64_t h = Mix(id);
  Stripe& st = stripes_[h & stripe_mask_];

  PageGuard fast;
  if (TryOptimisticHit(st, h, id, &fast)) return fast;

  for (;;) {
    Claim claim;
    Frame* wait_frame = nullptr;
    bool hit = false;
    bool flush_conflict = false;
    PageGuard guard;
    {
      std::lock_guard<std::mutex> lk(st.mu);
      const uint32_t idx = TableFind(st, id);
      if (idx != kNoFrame) {
        Frame& f = frames_[idx];
        const uint64_t prev = PinFrame(f, /*reference=*/true);
        st.stats.hits.fetch_add(1, std::memory_order_relaxed);
        guard = PageGuard(this, id, f.data, &f.cache_latch);
        hit = true;
        if ((prev & kIoBit) != 0) wait_frame = &f;
      } else if (Contains(st.flushing, id)) {
        // Its dirty write-back is in flight; re-reading now would see stale
        // bytes. Rare — wait for the flusher to land it.
        flush_conflict = true;
      } else {
        st.stats.misses.fetch_add(1, std::memory_order_relaxed);
        auto claimed = ClaimFrame(st, id);
        if (!claimed.ok()) return claimed.status();
        claim = *claimed;
        guard = PageGuard(this, id, frames_[claim.frame].data,
                          &frames_[claim.frame].cache_latch);
      }
    }
    if (flush_conflict) {
      std::this_thread::yield();
      continue;
    }
    if (hit) {
      if (wait_frame != nullptr) {
        NBLB_RETURN_NOT_OK(WaitForLoad(*wait_frame));
      }
      return guard;
    }
    // Loader path: displaced dirty page first, then our read — all outside
    // the stripe critical section.
    if (claim.writeback) {
      Status ws = WriteBack(st, claim);
      if (!ws.ok()) {
        AbortClaim(st, claim);
        return ws;
      }
    }
    Frame& f = frames_[claim.frame];
    Status rs = disk_->ReadPage(id, f.data);
    if (!rs.ok()) {
      AbortClaim(st, claim);
      return rs;
    }
    f.state.fetch_and(~kIoBit, std::memory_order_release);
    return guard;
  }
}

void BufferPool::AbortClaims(std::vector<Claim>* claims, bool transient) {
  for (Claim& c : *claims) {
    if (c.writeback) {
      // The batch failed before this claim's displaced dirty page was
      // written back (e.g. ResourceExhausted in a later stripe). Write it
      // now — best effort, but it both lands the data and removes the
      // stripe's flushing entry, which would otherwise wedge every future
      // fetch of that page in the flush-conflict retry loop.
      (void)WriteBack(StripeFor(c.old_id), c);
      c.writeback = false;
    }
    AbortClaim(StripeFor(c.id), c, transient);
  }
  claims->clear();
}

Result<BufferPool::BatchFetch> BufferPool::StartFetchPages(
    const std::vector<PageId>& ids) {
  TraceTimer span(TracePhase::kFetchStart);
  BatchFetch bf;
  bf.guards.resize(ids.size());
  if (ids.empty()) return bf;
  const PageId num_pages = disk_->num_pages();
  for (PageId id : ids) {
    if (id >= num_pages) {
      return Status::OutOfRange("fetch of unallocated page " +
                                std::to_string(id));
    }
  }
  StripeFor(ids[0]).stats.batch_fetches.fetch_add(1, std::memory_order_relaxed);

  // Pass 0 — optimistic lock-free pins. An all-hit batch (the common case
  // for a warm working set) resolves here with no stripe lock, no sort, and
  // no per-stripe grouping at all.
  size_t unresolved = 0;
  for (size_t k = 0; k < ids.size(); ++k) {
    const uint64_t h = Mix(ids[k]);
    if (!TryOptimisticHit(stripes_[h & stripe_mask_], h, ids[k],
                          &bf.guards[k])) {
      ++unresolved;
    }
  }
  if (unresolved == 0) return bf;

  // Group positions by stripe (stable: input order preserved per stripe).
  std::vector<uint32_t> order(ids.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return (Mix(ids[a]) & stripe_mask_) < (Mix(ids[b]) & stripe_mask_);
  });

  Status error;
  size_t gi = 0;
  while (gi < order.size() && error.ok()) {
    Stripe& st = StripeFor(ids[order[gi]]);
    size_t ge = gi;
    while (ge < order.size() && &StripeFor(ids[order[ge]]) == &st) ++ge;
    bool pending = false;
    for (size_t k = gi; k < ge; ++k) {
      if (!bf.guards[order[k]].valid()) pending = true;
    }
    if (!pending) {
      gi = ge;
      continue;
    }
    std::lock_guard<std::mutex> lk(st.mu);
    // Pass 1 — pin every resident page first, so a page requested by this
    // batch can never be chosen as a victim for one of its misses.
    for (size_t k = gi; k < ge; ++k) {
      const uint32_t pos = order[k];
      if (bf.guards[pos].valid()) continue;
      const uint32_t idx = TableFind(st, ids[pos]);
      if (idx == kNoFrame) continue;
      Frame& f = frames_[idx];
      const uint64_t prev = PinFrame(f, /*reference=*/true);
      st.stats.hits.fetch_add(1, std::memory_order_relaxed);
      bf.guards[pos] = PageGuard(this, ids[pos], f.data, &f.cache_latch);
      if ((prev & kIoBit) != 0) bf.waits.push_back(&f);
    }
    // Pass 2 — claim frames for the misses (a duplicate miss finds the
    // first occurrence's claim and just pins it). A page whose dirty
    // write-back is in flight elsewhere cannot be re-read yet; it is left
    // for FinishFetchPages to resolve with a blocking fetch (rare).
    for (size_t k = gi; k < ge; ++k) {
      const uint32_t pos = order[k];
      if (bf.guards[pos].valid()) continue;
      const PageId id = ids[pos];
      const uint32_t idx = TableFind(st, id);
      if (idx != kNoFrame) {
        Frame& f = frames_[idx];
        const uint64_t prev = PinFrame(f, /*reference=*/false);
        st.stats.hits.fetch_add(1, std::memory_order_relaxed);
        bf.guards[pos] = PageGuard(this, id, f.data, &f.cache_latch);
        if ((prev & kIoBit) != 0) bf.waits.push_back(&f);
        continue;
      }
      if (Contains(st.flushing, id)) {
        bf.stragglers.emplace_back(pos, id);
        continue;
      }
      st.stats.misses.fetch_add(1, std::memory_order_relaxed);
      auto claimed = ClaimFrame(st, id);
      if (!claimed.ok()) {
        error = claimed.status();
        break;
      }
      bf.claims.push_back(*claimed);
      bf.guards[pos] = PageGuard(this, id, frames_[claimed->frame].data,
                                 &frames_[claimed->frame].cache_latch);
    }
    gi = ge;
  }

  // Displaced dirty pages go back to disk before the miss reads are
  // submitted: a claimed frame's buffer still holds the displaced page
  // until its read overwrites it, so every write-back must LAND before any
  // read into the same frames goes out. The victims fly as one batched
  // async group (all runs at the device at once) and the barrier is the
  // single WaitWrites inside WriteBackBatch — eviction under memory
  // pressure no longer pays one synchronous pwrite per dirty victim.
  if (error.ok()) {
    error = WriteBackBatch(&bf.claims);
  }
  if (error.ok() && !bf.claims.empty()) {
    std::sort(bf.claims.begin(), bf.claims.end(),
              [](const Claim& a, const Claim& b) { return a.id < b.id; });
    std::vector<PageId> read_ids;
    std::vector<char*> dsts;
    read_ids.reserve(bf.claims.size());
    dsts.reserve(bf.claims.size());
    for (const Claim& c : bf.claims) {
      read_ids.push_back(c.id);
      dsts.push_back(frames_[c.frame].data);
    }
    // The reads go out now and proceed while the caller does other work;
    // FinishFetchPages harvests them.
    error = disk_->SubmitReads(read_ids.data(), dsts.data(), read_ids.size(),
                               &bf.ticket);
  }
  if (!error.ok()) {
    // ResourceExhausted is capacity backpressure, not a device fault:
    // waiters piggybacked on these claims get a retryable status.
    AbortClaims(&bf.claims, /*transient=*/error.IsResourceExhausted());
    return error;  // bf.guards destruct -> every pin taken so far is dropped
  }
  return bf;
}

Result<std::vector<PageGuard>> BufferPool::FinishFetchPages(BatchFetch bf) {
  Status rs = disk_->WaitReads(&bf.ticket);
  if (!rs.ok()) {
    // Write-backs already landed in Start; just unmap the failed loads so
    // waiters bail out and the frames self-heal.
    for (Claim& c : bf.claims) AbortClaim(StripeFor(c.id), c);
    return rs;  // guards destruct -> no pins retained
  }
  for (const Claim& c : bf.claims) {
    frames_[c.frame].state.fetch_and(~kIoBit, std::memory_order_release);
  }
  for (Frame* f : bf.waits) {
    NBLB_RETURN_NOT_OK(WaitForLoad(*f));
  }
  // Stragglers collided with an in-flight write-back of the same page; the
  // blocking per-page path waits it out (duplicates each take their own
  // pin, same as the batch path would have).
  for (const auto& [pos, id] : bf.stragglers) {
    NBLB_ASSIGN_OR_RETURN(bf.guards[pos], FetchPage(id));
  }
  return std::move(bf.guards);
}

Result<std::vector<PageGuard>> BufferPool::FetchPages(
    const std::vector<PageId>& ids) {
  NBLB_ASSIGN_OR_RETURN(BatchFetch bf, StartFetchPages(ids));
  return FinishFetchPages(std::move(bf));
}

Result<PageGuard> BufferPool::NewPage() {
  NBLB_ASSIGN_OR_RETURN(PageId id, disk_->AllocatePage());
  Stripe& st = StripeFor(id);
  Claim claim;
  PageGuard guard;
  {
    std::lock_guard<std::mutex> lk(st.mu);
    // A freshly allocated id cannot be resident or flushing.
    auto claimed = ClaimFrame(st, id);
    if (!claimed.ok()) return claimed.status();
    claim = *claimed;
    guard = PageGuard(this, id, frames_[claim.frame].data,
                      &frames_[claim.frame].cache_latch);
  }
  if (claim.writeback) {
    Status ws = WriteBack(st, claim);
    if (!ws.ok()) {
      AbortClaim(st, claim);
      return ws;
    }
  }
  Frame& f = frames_[claim.frame];
  std::memset(f.data, 0, page_size_);
  // A fresh page must reach disk even if never re-touched.
  f.state.fetch_or(kDirtyBit, std::memory_order_relaxed);
  f.state.fetch_and(~kIoBit, std::memory_order_release);
  return guard;
}

// ---------------------------------------------------------------------------
// Flush / evict
// ---------------------------------------------------------------------------

Status BufferPool::FlushPage(PageId id) {
  Stripe& st = StripeFor(id);
  std::lock_guard<std::mutex> lk(st.mu);
  const uint32_t idx = TableFind(st, id);
  if (idx == kNoFrame) return Status::OK();
  Frame& f = frames_[idx];
  const uint64_t s = f.state.load(std::memory_order_acquire);
  if ((s & kIoBit) != 0 || (s & kDirtyBit) == 0) return Status::OK();
  // Clear dirty before writing: a concurrent unpin-dirty after the clear is
  // preserved, whereas clearing after the write could swallow it.
  f.state.fetch_and(~kDirtyBit, std::memory_order_relaxed);
  Status ws;
  {
    // Hold the frame's cache latch so latch-disciplined content writers
    // (index-cache writes, concurrency tests) never overlap the flush read.
    LatchGuard latch(f.cache_latch);
    ws = disk_->WritePage(id, f.data);
  }
  if (!ws.ok()) {
    f.state.fetch_or(kDirtyBit, std::memory_order_relaxed);
    return ws;
  }
  return Status::OK();
}

Status BufferPool::FlushAll() {
  // Exclude the background flusher: a pass in flight holds pins and may
  // have cleared dirty bits for writes that have not landed yet — letting
  // FlushAll (and the Checkpoint fsync behind it) overtake those writes
  // would unsync what "checkpoint" promises.
  std::lock_guard<std::mutex> fl(flusher_pass_mu_);
  // Drain stripe by stripe UNDER the stripe mutex, like the pre-async
  // FlushAll: a concurrent fetch blocks briefly on the mutex and then
  // succeeds, instead of failing ResourceExhausted against a wall of
  // checkpoint pins (no pins are taken — frame identity is stable under
  // the mutex, since victim claims require it and EvictAll requires
  // flusher_pass_mu_, which we hold). Every dirty frame of the stripe
  // (pinned by readers or not — a checkpoint flushes everything) has its
  // dirty bit cleared up front (the FlushPage discipline: a concurrent
  // re-dirty after the clear is preserved for the next flush) and the
  // stripe's whole dirty set goes out through SubmitWrites in sorted
  // batched runs. The caller's single fsync behind this
  // (Database::Checkpoint) is the group-fsync: one barrier for the whole
  // drain instead of per-page write+sync interleavings.
  for (size_t i = 0; i < num_stripes_; ++i) {
    Stripe& st = stripes_[i];
    std::lock_guard<std::mutex> lk(st.mu);
    std::vector<FlushTarget> targets;
    for (uint32_t fi = st.begin; fi < st.end; ++fi) {
      Frame& f = frames_[fi];
      const uint64_t s = f.state.load(std::memory_order_acquire);
      if ((s & kValidBit) == 0 || (s & kIoBit) != 0 || (s & kDirtyBit) == 0) {
        continue;
      }
      f.state.fetch_and(~kDirtyBit, std::memory_order_relaxed);
      targets.push_back({&f, f.id.load(std::memory_order_relaxed)});
    }
    size_t flushed = 0, runs = 0;
    NBLB_RETURN_NOT_OK(FlushTargets(&targets, &flushed, &runs));
  }
  return Status::OK();
}

Status BufferPool::EvictAll() {
  // Exclude the flusher first: its pass pins frames, which would make the
  // pinned-check below report spurious Busy.
  std::lock_guard<std::mutex> fl(flusher_pass_mu_);
  // Take every stripe lock (in index order) so the pinned-check and the
  // eviction see one consistent pool state, like the seed's single mutex.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(num_stripes_);
  for (size_t i = 0; i < num_stripes_; ++i) {
    locks.emplace_back(stripes_[i].mu);
  }
  for (size_t i = 0; i < num_frames_; ++i) {
    const uint64_t s = frames_[i].state.load(std::memory_order_acquire);
    if ((s & kPinMask) != 0) {
      return Status::Busy("cannot evict: page " +
                          std::to_string(frames_[i].id.load(
                              std::memory_order_relaxed)) +
                          " is pinned");
    }
  }
  for (size_t i = 0; i < num_stripes_; ++i) {
    Stripe& st = stripes_[i];
    for (uint32_t fi = st.begin; fi < st.end; ++fi) {
      Frame& f = frames_[fi];
      uint64_t s = f.state.load(std::memory_order_acquire);
      if ((s & kPinMask) != 0) {
        // An optimistic lock-free pin landed after the first pinned-check
        // pass (it does not take the stripe mutexes we hold). Between this
        // load and the CAS below the CAS itself catches the race; here the
        // load catches it.
        return Status::Busy("cannot evict: page " +
                            std::to_string(
                                f.id.load(std::memory_order_relaxed)) +
                            " was pinned mid-eviction");
      }
      if ((s & kValidBit) != 0) {
        // Claim the frame (io bit blocks optimistic pins) BEFORE the dirty
        // write-back. A CAS-to-0 after the write-back would be ABA-prone: a
        // complete optimistic pin -> content write -> unpin-dirty cycle can
        // restore the identical state word (usage saturated, dirty already
        // set), and freeing the frame then would discard that write. With
        // the claim-first order any such cycle either lands before the CAS
        // (its content is what we write back) or fails to pin at all.
        const uint64_t claim = kValidBit | kIoBit | (s & kDirtyBit);
        if (!f.state.compare_exchange_strong(s, claim,
                                             std::memory_order_acq_rel,
                                             std::memory_order_relaxed)) {
          return Status::Busy("cannot evict: page " +
                              std::to_string(
                                  f.id.load(std::memory_order_relaxed)) +
                              " was pinned mid-eviction");
        }
        if ((s & kDirtyBit) != 0) {
          Status ws;
          {
            LatchGuard latch(f.cache_latch);  // see FlushPage
            ws = disk_->WritePage(f.id.load(std::memory_order_relaxed),
                                  f.data);
          }
          if (!ws.ok()) {
            // Leave the frame claimed-but-failed rather than half-evicted.
            f.state.store(kFailedBit, std::memory_order_release);
            TableErase(st, f.id.load(std::memory_order_relaxed));
            f.id.store(kInvalidPageId, std::memory_order_relaxed);
            return ws;
          }
          st.stats.dirty_writebacks.fetch_add(1, std::memory_order_relaxed);
        }
        TableErase(st, f.id.load(std::memory_order_relaxed));
        st.stats.evictions.fetch_add(1, std::memory_order_relaxed);
        f.state.store(0, std::memory_order_release);
      } else if ((s & kFailedBit) == 0) {
        continue;  // already on the free list
      } else {
        f.state.store(0, std::memory_order_relaxed);
      }
      f.id.store(kInvalidPageId, std::memory_order_relaxed);
      st.free_list.push_back(fi);
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Background flusher
// ---------------------------------------------------------------------------

void BufferPool::StartFlusher(uint64_t interval_us, size_t batch_pages) {
  if (interval_us == 0) return;
  NBLB_CHECK_MSG(!flusher_thread_.joinable(), "flusher already started");
  flusher_interval_us_ = interval_us;
  flush_batch_pages_ = batch_pages == 0 ? 1 : batch_pages;
  flusher_stop_ = false;
  flusher_thread_ = std::thread([this] { FlusherLoop(); });
}

void BufferPool::StopFlusher() {
  if (!flusher_thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lk(flusher_wake_mu_);
    flusher_stop_ = true;
  }
  flusher_cv_.notify_all();
  flusher_thread_.join();
}

void BufferPool::FlusherLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(flusher_wake_mu_);
      flusher_cv_.wait_for(lk,
                           std::chrono::microseconds(flusher_interval_us_),
                           [this] { return flusher_stop_; });
      if (flusher_stop_) return;
    }
    FlusherPass();
  }
}

void BufferPool::FlusherPass() {
  std::lock_guard<std::mutex> pass(flusher_pass_mu_);
  flusher_passes_.fetch_add(1, std::memory_order_relaxed);
  size_t budget = flush_batch_pages_;
  // Select under the stripe locks; write outside them. Each target is
  // PINNED for the duration of the pass — a pinned frame can never be
  // claimed by an evictor, so the frame's identity and buffer are stable
  // while the stripe locks are released.
  std::vector<FlushTarget> targets;
  targets.reserve(std::min(budget, num_frames_));
  for (size_t s = 0; s < num_stripes_ && budget > 0; ++s) {
    Stripe& st = stripes_[(flusher_cursor_ + s) & stripe_mask_];
    std::lock_guard<std::mutex> lk(st.mu);
    for (uint32_t fi = st.begin; fi < st.end && budget > 0; ++fi) {
      Frame& f = frames_[fi];
      uint64_t s0 = f.state.load(std::memory_order_acquire);
      if ((s0 & (kValidBit | kDirtyBit)) != (kValidBit | kDirtyBit) ||
          (s0 & (kIoBit | kFailedBit)) != 0) {
        continue;
      }
      // Skip pages someone is actively holding: a pinned writer is
      // likely to re-dirty immediately, so flushing it now is wasted
      // write I/O — and it cannot be chosen as a victim anyway, which
      // is what the flusher exists to pre-clean for.
      if ((s0 & kPinMask) != 0) continue;
      // Claim the frame in ONE CAS: pin it (stable identity for the
      // pass), set the io bit (content writers pin through the locked
      // path and WaitForLoad until the snapshot memcpy is done — heap
      // and B+Tree writers mutate page bytes under their pin without
      // taking the cache latch, so a pin-only flusher would snapshot a
      // torn page), and clear dirty BEFORE the write (the FlushPage
      // discipline: an unpin-dirty after the snapshot re-marks the frame
      // and it is simply flushed again next pass). A CAS failure means
      // someone pinned since the check — their write is coming; skip.
      uint64_t claimed = ((s0 + 1) | kIoBit) & ~kDirtyBit;
      if (!f.state.compare_exchange_strong(s0, claimed,
                                           std::memory_order_acq_rel,
                                           std::memory_order_relaxed)) {
        continue;
      }
      targets.push_back({&f, f.id.load(std::memory_order_relaxed),
                         /*claimed=*/true});
      --budget;
    }
  }
  // The whole pass drains as ONE sorted async group (snapshot + submit +
  // wait inside FlushTargets): every contiguous dirty run is a vectored
  // write and every run is at the device at once, instead of one
  // synchronous pwrite per page. Errors re-dirty their pages; the frames
  // stayed resident, so the next pass (or eviction) retries.
  size_t flushed = 0, runs = 0;
  (void)FlushTargets(&targets, &flushed, &runs);
  flusher_pages_.fetch_add(flushed, std::memory_order_relaxed);
  flusher_coalesced_runs_.fetch_add(runs, std::memory_order_relaxed);
  if (flushed > 0) RecordFlightEvent(FlightEvent::kFlusherPass, flushed, runs);
  for (FlushTarget& t : targets) UnpinFrame(*t.frame, /*dirty=*/false);
  flusher_cursor_ = (flusher_cursor_ + 1) & stripe_mask_;
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

BufferPoolStats BufferPool::stats() const {
  BufferPoolStats out;
  for (size_t i = 0; i < num_stripes_; ++i) {
    const StripeStats& s = stripes_[i].stats;
    out.hits += s.hits.load(std::memory_order_relaxed);
    out.misses += s.misses.load(std::memory_order_relaxed);
    out.evictions += s.evictions.load(std::memory_order_relaxed);
    out.dirty_writebacks += s.dirty_writebacks.load(std::memory_order_relaxed);
    out.batch_fetches += s.batch_fetches.load(std::memory_order_relaxed);
  }
  out.flusher_passes = flusher_passes_.load(std::memory_order_relaxed);
  out.flusher_pages = flusher_pages_.load(std::memory_order_relaxed);
  out.flusher_coalesced_runs =
      flusher_coalesced_runs_.load(std::memory_order_relaxed);
  return out;
}

void BufferPool::RegisterMetrics(MetricsRegistry* registry,
                                 const std::string& prefix) const {
  // Per-stripe counters are aggregated at snapshot time through reader
  // callbacks; nothing on the serving path changes.
  auto reg = [this, registry, &prefix](const char* name, auto member) {
    registry->RegisterCounterFn(prefix + name, [this, member] {
      uint64_t total = 0;
      for (size_t i = 0; i < num_stripes_; ++i) {
        total += (stripes_[i].stats.*member).load(std::memory_order_relaxed);
      }
      return total;
    });
  };
  reg("hits", &StripeStats::hits);
  reg("misses", &StripeStats::misses);
  reg("evictions", &StripeStats::evictions);
  reg("dirty_writebacks", &StripeStats::dirty_writebacks);
  reg("batch_fetches", &StripeStats::batch_fetches);
  registry->RegisterCounter(prefix + "flusher_passes", &flusher_passes_);
  registry->RegisterCounter(prefix + "flusher_pages", &flusher_pages_);
  registry->RegisterCounter(prefix + "flusher_coalesced_runs",
                            &flusher_coalesced_runs_);
  registry->RegisterGauge(prefix + "hit_rate",
                          [this] { return stats().HitRate(); });
}

void BufferPool::ResetStats() {
  for (size_t i = 0; i < num_stripes_; ++i) {
    StripeStats& s = stripes_[i].stats;
    s.hits.store(0, std::memory_order_relaxed);
    s.misses.store(0, std::memory_order_relaxed);
    s.evictions.store(0, std::memory_order_relaxed);
    s.dirty_writebacks.store(0, std::memory_order_relaxed);
    s.batch_fetches.store(0, std::memory_order_relaxed);
  }
  flusher_passes_.store(0, std::memory_order_relaxed);
  flusher_pages_.store(0, std::memory_order_relaxed);
  flusher_coalesced_runs_.store(0, std::memory_order_relaxed);
}

}  // namespace nblb
