#include "storage/buffer_pool.h"

#include <cstring>

#include "common/logging.h"

namespace nblb {

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    bp_ = other.bp_;
    id_ = other.id_;
    data_ = other.data_;
    latch_ = other.latch_;
    dirty_ = other.dirty_;
    other.bp_ = nullptr;
    other.data_ = nullptr;
    other.latch_ = nullptr;
    other.dirty_ = false;
  }
  return *this;
}

void PageGuard::Release() {
  if (bp_ != nullptr) {
    bp_->Unpin(id_, dirty_);
    bp_ = nullptr;
    data_ = nullptr;
    latch_ = nullptr;
    dirty_ = false;
  }
}

BufferPool::BufferPool(DiskManager* disk, size_t num_frames)
    : disk_(disk), num_frames_(num_frames) {
  NBLB_CHECK(num_frames > 0);
  arena_.reset(new char[num_frames * disk_->page_size()]);
  frames_.reset(new Frame[num_frames]);
  free_frames_.reserve(num_frames);
  for (size_t i = 0; i < num_frames; ++i) {
    frames_[i].data = arena_.get() + i * disk_->page_size();
    free_frames_.push_back(num_frames - 1 - i);
  }
}

BufferPool::~BufferPool() {
  // Best effort write-back of dirty pages.
  (void)FlushAll();
}

Result<size_t> BufferPool::GetVictimFrame() {
  if (!free_frames_.empty()) {
    size_t idx = free_frames_.back();
    free_frames_.pop_back();
    return idx;
  }
  if (lru_.empty()) {
    return Status::ResourceExhausted("all buffer pool frames are pinned");
  }
  // Least recently used unpinned frame.
  size_t idx = lru_.back();
  NBLB_RETURN_NOT_OK(EvictFrame(idx));
  return idx;
}

Status BufferPool::EvictFrame(size_t frame_idx) {
  Frame& f = frames_[frame_idx];
  NBLB_CHECK(f.pin_count == 0);
  if (f.dirty) {
    NBLB_RETURN_NOT_OK(disk_->WritePage(f.id, f.data));
    ++stats_.dirty_writebacks;
    f.dirty = false;
  }
  if (f.in_lru) {
    lru_.erase(f.lru_it);
    f.in_lru = false;
  }
  page_table_.erase(f.id);
  f.id = kInvalidPageId;
  ++stats_.evictions;
  return Status::OK();
}

Result<PageGuard> BufferPool::FetchPage(PageId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = page_table_.find(id);
  if (it != page_table_.end()) {
    Frame& f = frames_[it->second];
    if (f.in_lru) {
      lru_.erase(f.lru_it);
      f.in_lru = false;
    }
    ++f.pin_count;
    ++stats_.hits;
    return PageGuard(this, id, f.data, &f.cache_latch);
  }
  ++stats_.misses;
  NBLB_ASSIGN_OR_RETURN(size_t idx, GetVictimFrame());
  Frame& f = frames_[idx];
  Status st = disk_->ReadPage(id, f.data);
  if (!st.ok()) {
    free_frames_.push_back(idx);
    return st;
  }
  f.id = id;
  f.pin_count = 1;
  f.dirty = false;
  page_table_[id] = idx;
  return PageGuard(this, id, f.data, &f.cache_latch);
}

Result<PageGuard> BufferPool::NewPage() {
  std::lock_guard<std::mutex> lock(mu_);
  NBLB_ASSIGN_OR_RETURN(PageId id, disk_->AllocatePage());
  NBLB_ASSIGN_OR_RETURN(size_t idx, GetVictimFrame());
  Frame& f = frames_[idx];
  std::memset(f.data, 0, disk_->page_size());
  f.id = id;
  f.pin_count = 1;
  f.dirty = true;  // a fresh page must reach disk even if never re-touched
  page_table_[id] = idx;
  return PageGuard(this, id, f.data, &f.cache_latch);
}

void BufferPool::Unpin(PageId id, bool dirty) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = page_table_.find(id);
  NBLB_CHECK_MSG(it != page_table_.end(), "unpin of unknown page");
  Frame& f = frames_[it->second];
  NBLB_CHECK_MSG(f.pin_count > 0, "unpin of unpinned page");
  if (dirty) f.dirty = true;
  if (--f.pin_count == 0) {
    lru_.push_front(it->second);
    f.lru_it = lru_.begin();
    f.in_lru = true;
  }
}

Status BufferPool::FlushPage(PageId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = page_table_.find(id);
  if (it == page_table_.end()) return Status::OK();
  Frame& f = frames_[it->second];
  if (f.dirty) {
    NBLB_RETURN_NOT_OK(disk_->WritePage(f.id, f.data));
    f.dirty = false;
  }
  return Status::OK();
}

Status BufferPool::FlushAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < num_frames_; ++i) {
    Frame& f = frames_[i];
    if (f.id != kInvalidPageId && f.dirty) {
      NBLB_RETURN_NOT_OK(disk_->WritePage(f.id, f.data));
      f.dirty = false;
    }
  }
  return Status::OK();
}

Status BufferPool::EvictAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < num_frames_; ++i) {
    Frame& f = frames_[i];
    if (f.id != kInvalidPageId && f.pin_count > 0) {
      return Status::Busy("cannot evict: page " + std::to_string(f.id) +
                          " is pinned");
    }
  }
  for (size_t i = 0; i < num_frames_; ++i) {
    Frame& f = frames_[i];
    if (f.id == kInvalidPageId) continue;
    NBLB_RETURN_NOT_OK(EvictFrame(i));
    free_frames_.push_back(i);
  }
  return Status::OK();
}

}  // namespace nblb
