// BufferPool: fixed-size page cache with striped clock-sweep replacement.
//
// The buffer pool is the arbiter of the paper's cost regimes: an index-cache
// hit avoids touching it entirely, a buffer-pool hit costs a memory access,
// and a miss costs a (real or simulated) disk read. Stats expose hit rates so
// every experiment can report where its time went.
//
// Layout (see src/storage/README.md for the long version):
//
//   - Pages map to one of N stripes by splitmix64(page_id). Each stripe owns
//     a fixed slice of the frame array, an open-addressing page table, a
//     CLOCK (second-chance) hand, a free list, and atomic stat counters —
//     there is no global mutex and no linked list.
//   - Per-frame replacement state (pin count, dirty, reference, io-pending,
//     valid, failed) is packed into a single atomic word, so Unpin is one
//     CAS with no stripe lock at all.
//   - Disk I/O (miss reads and dirty write-back) happens OUTSIDE the stripe
//     critical section: a miss claims a frame with the `io` bit set and
//     releases the stripe lock before touching the device; concurrent
//     fetchers of the same page pin the frame and spin until `io` clears.
//   - FetchPages() batches misses per stripe and submits them as one async
//     read group (DiskManager::SubmitReads — io_uring or the preadv thread
//     fallback): one vectored op per contiguous run, every run in flight at
//     the device at once. StartFetchPages/FinishFetchPages expose the two
//     halves so callers (the B+Tree descent) can overlap work with the I/O.
//   - An optional background flusher thread (StartFlusher) writes dirty
//     unpinned frames back on a timer, so eviction mostly finds clean
//     victims and write-back stays off the serving path.
//   - Write-back is batched and asynchronous everywhere (flusher passes,
//     dirty eviction victims in StartFetchPages, FlushAll/Checkpoint):
//     dirty sets drain sorted through DiskManager::SubmitWrites — one
//     vectored op per contiguous run, all runs at the device at once —
//     with a single fsync behind a checkpoint drain (group fsync).
//     set_sync_writeback(true) restores per-page pwrite as an A/B
//     baseline.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/latch.h"
#include "common/result.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace nblb {

/// \brief Hit/miss/eviction counters (a plain-value snapshot; the live
/// counters are per-stripe relaxed atomics aggregated by stats()).
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t dirty_writebacks = 0;
  /// FetchPages()/StartFetchPages() calls (each may cover many pages).
  uint64_t batch_fetches = 0;
  /// Background flusher cycles executed (0 unless StartFlusher ran).
  uint64_t flusher_passes = 0;
  /// Dirty pages written back by the background flusher — write-back work
  /// taken off the serving/evicting threads entirely.
  uint64_t flusher_pages = 0;
  /// Contiguous page runs the flusher's sorted batches coalesced into (one
  /// vectored write op each) — with `flusher_pages` this gives pages per
  /// device write, the batching win of the async write-back path.
  uint64_t flusher_coalesced_runs = 0;

  double HitRate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class BufferPool;

/// \brief RAII pin on a buffer-pool page. Move-only; unpins on destruction.
///
/// MarkDirty() schedules write-back on eviction/flush. Index-cache writes
/// deliberately do NOT mark dirty (§2.1.1: "cache modifications do not dirty
/// the page").
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* bp, PageId id, char* data, SpinLatch* latch)
      : bp_(bp), id_(id), data_(data), latch_(latch) {}
  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept;
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  ~PageGuard() { Release(); }

  bool valid() const { return bp_ != nullptr; }
  PageId id() const { return id_; }
  char* data() { return data_; }
  const char* data() const { return data_; }

  /// \brief Marks the page dirty (will be written back before eviction).
  void MarkDirty() { dirty_ = true; }

  /// \brief Per-frame latch guarding in-page cache bytes (§2.1.3).
  SpinLatch* cache_latch() { return latch_; }

  /// \brief Unpins now (otherwise the destructor does).
  void Release();

 private:
  BufferPool* bp_ = nullptr;
  PageId id_ = kInvalidPageId;
  char* data_ = nullptr;
  SpinLatch* latch_ = nullptr;
  bool dirty_ = false;
};

/// \brief Fixed-capacity page cache over a DiskManager. Thread safe for all
/// operations (page content synchronization is the caller's concern; use the
/// per-frame cache_latch for in-page cache bytes).
class BufferPool {
 public:
  /// \param disk         backing disk manager (not owned); must be thread
  ///                     safe (DiskManager is)
  /// \param num_frames   capacity in pages
  /// \param num_stripes  stripe count (rounded down to a power of two,
  ///                     clamped to [1, num_frames]); 0 picks automatically:
  ///                     one stripe per 64 frames, at most 64 stripes, so
  ///                     tiny pools degenerate to a single exact stripe.
  BufferPool(DiskManager* disk, size_t num_frames, size_t num_stripes = 0);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// \brief Fetches (pinning) an existing page.
  Result<PageGuard> FetchPage(PageId id);

  /// \brief In-flight state of a batched fetch started with
  /// StartFetchPages: pinned hits, claimed miss frames (io bit set), and
  /// the async read ticket covering them. Move-only; must be handed to
  /// FinishFetchPages exactly once (dropping it un-pins the hits but would
  /// leave claimed frames loading — Finish is what completes them).
  class BatchFetch;

  /// \brief Fetches many pages at once, returning guards 1:1 with `ids`
  /// (duplicates allowed — each occurrence holds its own pin). Misses are
  /// grouped per stripe, sorted, and submitted as one async read group —
  /// one vectored op per contiguous page run, all runs in flight at the
  /// device simultaneously. All-or-nothing: on error no pins are retained.
  /// Every page stays pinned until its guard drops, so callers must keep
  /// batches well below the pool capacity (HeapFile::GetBatch chunks to a
  /// quarter of the frames); oversized batches fail ResourceExhausted.
  /// Equivalent to StartFetchPages + FinishFetchPages.
  Result<std::vector<PageGuard>> FetchPages(const std::vector<PageId>& ids);

  /// \brief Begins a batched fetch: pins every resident page, claims frames
  /// for the misses (they sit in the io-in-progress state), performs any
  /// displaced dirty write-backs, and submits the miss reads through
  /// DiskManager::SubmitReads — then returns while the reads are still in
  /// flight. Callers overlap useful work (e.g. the B+Tree descent
  /// prefetches the next level while processing the current one) and call
  /// FinishFetchPages to harvest the guards.
  Result<BatchFetch> StartFetchPages(const std::vector<PageId>& ids);

  /// \brief Completes a StartFetchPages: waits for the in-flight reads,
  /// publishes the loaded frames, and resolves any stragglers (pages whose
  /// dirty write-back was in flight at claim time). All-or-nothing like
  /// FetchPages.
  Result<std::vector<PageGuard>> FinishFetchPages(BatchFetch bf);

  /// \brief Allocates a new zeroed page and returns it pinned.
  Result<PageGuard> NewPage();

  /// \brief Writes a page back if dirty.
  Status FlushPage(PageId id);

  /// \brief Writes back all dirty pages.
  Status FlushAll();

  /// \brief Drops every unpinned page (clean or dirty-after-flush) from the
  /// pool. Simulates a cold cache; fails if any page is pinned.
  Status EvictAll();

  /// \brief Starts the background dirty-page flusher: every `interval_us`
  /// it writes back up to `batch_pages` dirty unpinned frames (round-robin
  /// over stripes), so eviction mostly finds clean victims and write-back
  /// leaves the serving path. Call at most once; no-op if interval_us == 0.
  void StartFlusher(uint64_t interval_us, size_t batch_pages);

  /// \brief Stops the flusher thread (idempotent; called by the
  /// destructor before the final FlushAll).
  void StopFlusher();

  /// \brief Forces every write-back path (flusher, eviction, FlushAll)
  /// back to synchronous one-page writes. A measurement/debug baseline
  /// knob — benchmarks A/B the async batched pipeline against exactly the
  /// per-page behaviour it replaced. Safe to toggle at any time.
  void set_sync_writeback(bool v) {
    sync_writeback_.store(v, std::memory_order_relaxed);
  }
  bool sync_writeback() const {
    return sync_writeback_.load(std::memory_order_relaxed);
  }

  size_t num_frames() const { return num_frames_; }
  size_t num_stripes() const { return num_stripes_; }
  size_t page_size() const { return page_size_; }
  DiskManager* disk() { return disk_; }

  /// \brief Aggregated snapshot of the per-stripe atomic counters.
  BufferPoolStats stats() const;
  void ResetStats();

  /// \brief Publishes the pool's counters under `prefix` (e.g.
  /// "buffer_pool.") in the unified registry (see src/obs/). Per-stripe
  /// counters are registered as cross-stripe aggregate reader callbacks;
  /// the flusher counters are direct atomics; "hit_rate" is a gauge. The
  /// registry must not outlive this BufferPool.
  void RegisterMetrics(MetricsRegistry* registry,
                       const std::string& prefix) const;

 private:
  friend class PageGuard;

  // ---- Packed frame state word ---------------------------------------------
  // [0..15] pin count   [16] dirty   [17] io (load in flight)
  // [18] valid (holds a page)   [19] failed   [20..22] usage count
  //
  // The usage count is the CLOCK second chance, Postgres-style: each re-hit
  // saturates it toward kUsageMax, each sweep pass decrements it, and only a
  // frame at zero is evictable — near-capacity skewed working sets keep
  // LRU-like protection for their hot pages instead of degrading to FIFO.
  static constexpr uint64_t kPinMask = 0xffffull;
  static constexpr uint64_t kDirtyBit = 1ull << 16;
  static constexpr uint64_t kIoBit = 1ull << 17;
  static constexpr uint64_t kValidBit = 1ull << 18;
  static constexpr uint64_t kFailedBit = 1ull << 19;
  /// Set WITH kFailedBit when a claim was aborted for a transient,
  /// non-device reason (the owning batch hit ResourceExhausted in another
  /// stripe): waiters piggybacked on the load get backpressure they can
  /// retry, not a spurious IOError.
  static constexpr uint64_t kTransientBit = 1ull << 23;
  static constexpr unsigned kUsageShift = 20;
  static constexpr uint64_t kUsageOne = 1ull << kUsageShift;
  static constexpr uint64_t kUsageMask = 7ull << kUsageShift;
  static constexpr uint64_t kUsageMax = 5;  // like Postgres' BM_MAX_USAGE_COUNT
  /// State of a frame just claimed for a load: pinned once, io in flight.
  static constexpr uint64_t kClaimedState = kValidBit | kIoBit | 1;

  static constexpr uint32_t kNoFrame = ~0u;

  struct Frame {
    /// Packed pin/dirty/ref/io/valid/failed word; see bit layout above.
    /// Pins and unpins are lock-free RMWs; everything else mutates under the
    /// owning stripe's mutex.
    std::atomic<uint64_t> state{0};
    /// Page held (or being loaded). Written only under the stripe mutex
    /// while the frame is claimed (io set); atomic so the optimistic hit
    /// path can validate it without the lock.
    std::atomic<PageId> id{kInvalidPageId};
    char* data = nullptr;
    SpinLatch cache_latch;
  };

  /// Per-stripe live counters (relaxed: independent monotonic event counts).
  struct StripeStats {
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> evictions{0};
    std::atomic<uint64_t> dirty_writebacks{0};
    std::atomic<uint64_t> batch_fetches{0};
  };

  struct alignas(64) Stripe {
    std::mutex mu;
    /// Open-addressing page table (linear probing, backshift deletion).
    /// slot_key[i] == kInvalidPageId means empty. Power-of-two sized, load
    /// factor <= 0.5 by construction (2x the stripe's frame count).
    /// Mutations happen under `mu`; the slots are atomics so the optimistic
    /// hit path may probe without it (stale/torn reads are caught by frame
    /// validation or resolved by falling back to the locked path).
    std::unique_ptr<std::atomic<PageId>[]> slot_key;
    std::unique_ptr<std::atomic<uint32_t>[]> slot_frame;  // global frame idx
    size_t table_mask = 0;
    /// Frames owned: global indexes [begin, end).
    uint32_t begin = 0;
    uint32_t end = 0;
    /// CLOCK hand, offset within [begin, end).
    uint32_t hand = 0;
    std::vector<uint32_t> free_list;
    /// Page ids whose dirty write-back is in flight outside the lock; a miss
    /// on one of these must wait for the write to land before re-reading.
    std::vector<PageId> flushing;
    StripeStats stats;
  };

  /// One frame claimed for a load, plus the eviction it displaced.
  struct Claim {
    uint32_t frame = kNoFrame;
    PageId id = kInvalidPageId;       // page being loaded
    PageId old_id = kInvalidPageId;   // dirty page to write back first
    bool writeback = false;
  };

  static uint64_t Mix(PageId id);
  Stripe& StripeFor(PageId id) { return stripes_[Mix(id) & stripe_mask_]; }

  // Page-table helpers; stripe mutex held.
  uint32_t TableFind(const Stripe& st, PageId id) const;
  void TableInsert(Stripe& st, PageId id, uint32_t frame);
  void TableErase(Stripe& st, PageId id);
  static bool Contains(const std::vector<PageId>& v, PageId id);

  /// Claims a frame for loading `id` (stripe mutex held): free list first,
  /// then CLOCK sweep. On success the frame is in kClaimedState, mapped in
  /// the table, and any displaced dirty page is queued on st.flushing.
  Result<Claim> ClaimFrame(Stripe& st, PageId id);

  /// Completes a claim whose load will not happen: unmaps the page and
  /// marks the frame failed so concurrent waiters bail out. `transient`
  /// distinguishes "the owning batch aborted under capacity pressure"
  /// (waiters get retryable ResourceExhausted) from a real device error
  /// (waiters get IOError). Takes the stripe mutex.
  void AbortClaim(Stripe& st, const Claim& claim, bool transient = false);

  /// Aborts every claim in the list, writing back any still-pending
  /// displaced dirty page first (landing the data AND removing the
  /// stripe's flushing entry, which would otherwise wedge future fetches
  /// of that page in the flush-conflict retry loop).
  void AbortClaims(std::vector<Claim>* claims, bool transient = false);

  /// Writes back a displaced dirty page and clears its flushing entry.
  Status WriteBack(Stripe& st, const Claim& claim);

  /// Removes `id` from the stripe's flushing list (stripe mutex taken
  /// inside).
  void RemoveFlushing(Stripe& st, PageId id);

  /// Batched write-back of every displaced dirty page in `claims` (the
  /// eviction-under-pressure path): sorts the victims by page id, puts all
  /// runs in flight through DiskManager::SubmitWrites, waits the group,
  /// and clears the flushing entries. Each claim's `writeback` flag is
  /// cleared whether or not the group succeeded (the flushing entries are
  /// gone either way — see the data-loss NOTE on WriteBack). Falls back to
  /// per-page WriteBack under sync_writeback_.
  Status WriteBackBatch(std::vector<Claim>* claims);

  /// One selected flush target: a frame pinned with its dirty bit already
  /// cleared, plus the page id it held at selection time.
  struct FlushTarget {
    Frame* frame = nullptr;
    PageId id = kInvalidPageId;
    /// True when the selector io-claimed the frame (flusher pass): the
    /// snapshot owns the bytes outright — concurrent pins wait on the io
    /// bit — and FlushTargets must clear kIoBit right after its memcpy.
    bool claimed = false;
  };

  /// Writes `targets` back in sorted batched groups (snapshotting each
  /// page into the staging arena under its cache latch, then
  /// SubmitWrites/WaitWrites per staging-sized chunk), or per-page
  /// synchronously under sync_writeback_. Failed pages are re-marked dirty
  /// (batch mode re-marks the whole failing chunk — conservative, a clean
  /// page flushed twice is harmless). Does NOT unpin. Returns the first
  /// error and sets `*flushed`/`*runs` to the successful page and run
  /// counts.
  Status FlushTargets(std::vector<FlushTarget>* targets, size_t* flushed,
                      size_t* runs);

  /// Spins until the frame's io bit clears; IOError if the load failed.
  Status WaitForLoad(Frame& f);

  /// Lock-free unpin by frame: one CAS folding the pin decrement and the
  /// dirty transfer so eviction can never observe the pin drop without the
  /// dirty bit. Guards call this with the frame derived from their data
  /// pointer (there is no by-page-id unpin; guards are the only pin owners).
  void UnpinFrame(Frame& f, bool dirty);
  /// One CAS that pins and (for hits) saturates the usage count. Returns the
  /// pre-CAS state so callers can detect an in-flight load (kIoBit).
  uint64_t PinFrame(Frame& f, bool reference);

  /// Lock-free hit attempt: probe the stripe's atomic slots, pin with one
  /// CAS, validate against ABA. False means "use the locked path".
  bool TryOptimisticHit(Stripe& st, uint64_t h, PageId id, PageGuard* out);
  void ReleaseGuard(char* data, bool dirty);

  size_t FrameIndexOf(const char* data) const {
    const size_t off = static_cast<size_t>(data - arena_);
    // page_shift_ is nonzero iff page_size_ is a power of two (the common
    // case); a shift keeps the per-unpin cost to a couple of cycles.
    return page_shift_ != 0 ? off >> page_shift_ : off / page_size_;
  }

  void FlusherLoop();
  /// One flusher cycle: pin + clean up to flush_batch_pages_ dirty frames
  /// (round-robin over stripes) and write them back off the serving path.
  void FlusherPass();

  DiskManager* disk_;
  size_t num_frames_ = 0;
  size_t page_size_ = 0;
  unsigned page_shift_ = 0;  ///< log2(page_size_) when it is a power of two
  char* arena_ = nullptr;  // 4096-aligned so O_DIRECT can read straight in
  std::unique_ptr<Frame[]> frames_;
  std::unique_ptr<Stripe[]> stripes_;
  size_t num_stripes_ = 0;
  uint64_t stripe_mask_ = 0;

  // ---- Background flusher --------------------------------------------------
  /// Held by the flusher for the duration of each pass; FlushAll and
  /// EvictAll take it first so they never interleave with a half-done pass
  /// (the flusher pins its targets, which would flip EvictAll to Busy and
  /// let Checkpoint sync before an in-flight write-back lands).
  std::mutex flusher_pass_mu_;
  std::mutex flusher_wake_mu_;
  std::condition_variable flusher_cv_;
  std::thread flusher_thread_;
  bool flusher_stop_ = false;  // under flusher_wake_mu_
  uint64_t flusher_interval_us_ = 0;
  size_t flush_batch_pages_ = 64;
  size_t flusher_cursor_ = 0;  // stripe rotation across passes
  std::atomic<uint64_t> flusher_passes_{0};
  std::atomic<uint64_t> flusher_pages_{0};
  std::atomic<uint64_t> flusher_coalesced_runs_{0};

  /// Baseline knob: true forces per-page synchronous write-back everywhere
  /// (see set_sync_writeback).
  std::atomic<bool> sync_writeback_{false};
  /// Staging arena for batched flushes: up to kFlushStagingPages pages are
  /// snapshotted here (4096-aligned, so O_DIRECT group writes transfer
  /// directly) while their cache latches are released — the device reads a
  /// latch-consistent copy, never live frame memory. Allocated lazily and
  /// used only under flusher_pass_mu_, which FlusherPass and FlushAll both
  /// hold.
  static constexpr size_t kFlushStagingPages = 256;
  char* flush_staging_ = nullptr;

 public:
  class BatchFetch {
   public:
    BatchFetch() = default;
    BatchFetch(BatchFetch&&) = default;
    BatchFetch& operator=(BatchFetch&&) = default;
    BatchFetch(const BatchFetch&) = delete;
    BatchFetch& operator=(const BatchFetch&) = delete;

    /// True when completing this fetch depends only on its own submitted
    /// reads — no frame another thread is still loading (waits) and no
    /// page whose dirty write-back was in flight (stragglers).
    /// Pipelining callers MUST NOT hold a second unfinished
    /// StartFetchPages while finishing one that is not self-contained:
    /// Finish would then block on another thread's progress while this
    /// caller's prefetched claims keep their io bits set, and two callers
    /// doing that against each other deadlock (A waits on B's claim, B
    /// waits on A's prefetched claim). A thread that holds no unfinished
    /// prefetch publishes its own claims before blocking on others, which
    /// is what makes the plain FetchPages path deadlock-free.
    bool self_contained() const {
      return waits.empty() && stragglers.empty();
    }

   private:
    friend class BufferPool;
    std::vector<PageGuard> guards;    // 1:1 with the request; stragglers
                                      // invalid until Finish resolves them
    std::vector<Claim> claims;        // frames this fetch is loading
    std::vector<Frame*> waits;        // frames another thread is loading
    /// (position, page) pairs that collided with an in-flight write-back.
    std::vector<std::pair<uint32_t, PageId>> stragglers;
    DiskManager::IoTicket ticket;     // in-flight reads for `claims`
  };
};

}  // namespace nblb
