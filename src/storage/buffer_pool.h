// BufferPool: fixed-size page cache with exact LRU replacement.
//
// The buffer pool is the arbiter of the paper's cost regimes: an index-cache
// hit avoids touching it entirely, a buffer-pool hit costs a memory access,
// and a miss costs a (simulated) disk read. Stats expose hit rates so every
// experiment can report where its time went.

#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/latch.h"
#include "common/result.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace nblb {

/// \brief Hit/miss/eviction counters.
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t dirty_writebacks = 0;

  double HitRate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class BufferPool;

/// \brief RAII pin on a buffer-pool page. Move-only; unpins on destruction.
///
/// MarkDirty() schedules write-back on eviction/flush. Index-cache writes
/// deliberately do NOT mark dirty (§2.1.1: "cache modifications do not dirty
/// the page").
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* bp, PageId id, char* data, SpinLatch* latch)
      : bp_(bp), id_(id), data_(data), latch_(latch) {}
  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept;
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  ~PageGuard() { Release(); }

  bool valid() const { return bp_ != nullptr; }
  PageId id() const { return id_; }
  char* data() { return data_; }
  const char* data() const { return data_; }

  /// \brief Marks the page dirty (will be written back before eviction).
  void MarkDirty() { dirty_ = true; }

  /// \brief Per-frame latch guarding in-page cache bytes (§2.1.3).
  SpinLatch* cache_latch() { return latch_; }

  /// \brief Unpins now (otherwise the destructor does).
  void Release();

 private:
  BufferPool* bp_ = nullptr;
  PageId id_ = kInvalidPageId;
  char* data_ = nullptr;
  SpinLatch* latch_ = nullptr;
  bool dirty_ = false;
};

/// \brief Fixed-capacity page cache over a DiskManager. Thread safe (one
/// internal mutex; page content synchronization is the caller's concern).
class BufferPool {
 public:
  /// \param disk        backing disk manager (not owned)
  /// \param num_frames  capacity in pages
  BufferPool(DiskManager* disk, size_t num_frames);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// \brief Fetches (pinning) an existing page.
  Result<PageGuard> FetchPage(PageId id);

  /// \brief Allocates a new zeroed page and returns it pinned.
  Result<PageGuard> NewPage();

  /// \brief Unpins; if `dirty`, the page will be written back lazily.
  void Unpin(PageId id, bool dirty);

  /// \brief Writes a page back if dirty.
  Status FlushPage(PageId id);

  /// \brief Writes back all dirty pages.
  Status FlushAll();

  /// \brief Drops every unpinned page (clean or dirty-after-flush) from the
  /// pool. Simulates a cold cache; fails if any page is pinned.
  Status EvictAll();

  size_t num_frames() const { return num_frames_; }
  size_t page_size() const { return disk_->page_size(); }
  DiskManager* disk() { return disk_; }

  const BufferPoolStats& stats() const { return stats_; }
  void ResetStats() { stats_ = BufferPoolStats{}; }

 private:
  struct Frame {
    PageId id = kInvalidPageId;
    int pin_count = 0;
    bool dirty = false;
    char* data = nullptr;
    SpinLatch cache_latch;
    std::list<size_t>::iterator lru_it;  // valid only when pin_count == 0
    bool in_lru = false;
  };

  // All private helpers assume mu_ is held.
  Result<size_t> GetVictimFrame();
  Status EvictFrame(size_t frame_idx);

  DiskManager* disk_;
  std::unique_ptr<Frame[]> frames_;  // SpinLatch members are not movable
  size_t num_frames_ = 0;
  std::unique_ptr<char[]> arena_;
  std::unordered_map<PageId, size_t> page_table_;
  std::list<size_t> lru_;           // front = most recently used
  std::vector<size_t> free_frames_;
  BufferPoolStats stats_;
  std::mutex mu_;
};

}  // namespace nblb
