#include "storage/heap_file.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/bytes.h"
#include "common/logging.h"
#include "obs/event_ring.h"
#include "obs/trace.h"

namespace nblb {

namespace {

/// Bound on consecutive yield-retries when a chunk-size-1 StartFetchPages
/// keeps hitting transient capacity pressure (another batch's claims being
/// aborted mid-flight). The pressure resolves as soon as the competing batch
/// finishes or unwinds, so a few thousand yields is far beyond any real
/// wait; the bound only guards against a genuinely wedged pool.
constexpr size_t kMaxTransientRetries = 4096;

// Heap page layout:
//   [0]  u16 page_type (kPageTypeHeap)
//   [2]  u16 capacity (slots per page)
//   [4]  u16 used (live tuples)
//   [6]  u16 tuple_size
//   [8]  u32 next_page
//   [12] u32 reserved
//   [16] occupancy bitmap, ceil(capacity/8) bytes
//   [16 + bitmap] tuples, capacity * tuple_size bytes
constexpr size_t kHeapHeaderSize = 16;

uint16_t LoadU16(const char* p) { return DecodeFixed16(p); }
void StoreU16(char* p, uint16_t v) { EncodeFixed16(p, v); }
uint32_t LoadU32(const char* p) { return DecodeFixed32(p); }
void StoreU32(char* p, uint32_t v) { EncodeFixed32(p, v); }

bool BitmapGet(const char* bitmap, size_t i) {
  return (static_cast<unsigned char>(bitmap[i / 8]) >> (i % 8)) & 1;
}

void BitmapSet(char* bitmap, size_t i, bool v) {
  unsigned char mask = static_cast<unsigned char>(1u << (i % 8));
  if (v) {
    bitmap[i / 8] = static_cast<char>(
        static_cast<unsigned char>(bitmap[i / 8]) | mask);
  } else {
    bitmap[i / 8] = static_cast<char>(
        static_cast<unsigned char>(bitmap[i / 8]) & ~mask);
  }
}

}  // namespace

HeapFile::HeapFile(BufferPool* bp, size_t tuple_size, HeapFileOptions options)
    : bp_(bp), tuple_size_(tuple_size), options_(options) {
  slots_per_page_ = ComputeSlotsPerPage(bp->page_size(), tuple_size);
  bitmap_bytes_ = (slots_per_page_ + 7) / 8;
}

size_t HeapFile::ComputeSlotsPerPage(size_t page_size, size_t tuple_size) {
  NBLB_CHECK(tuple_size > 0);
  // capacity c must satisfy: kHeapHeaderSize + ceil(c/8) + c*tuple_size <= page_size.
  size_t c = (page_size - kHeapHeaderSize) * 8 / (8 * tuple_size + 1);
  while (c > 0 && kHeapHeaderSize + (c + 7) / 8 + c * tuple_size > page_size) {
    --c;
  }
  NBLB_CHECK_MSG(c > 0, "tuple too large for page");
  return c;
}

Result<std::unique_ptr<HeapFile>> HeapFile::Create(BufferPool* bp,
                                                   size_t tuple_size,
                                                   HeapFileOptions options) {
  std::unique_ptr<HeapFile> hf(new HeapFile(bp, tuple_size, options));
  NBLB_RETURN_NOT_OK(hf->AppendPage());
  return hf;
}

Result<std::unique_ptr<HeapFile>> HeapFile::Attach(BufferPool* bp,
                                                   size_t tuple_size,
                                                   PageId first_page,
                                                   HeapFileOptions options) {
  std::unique_ptr<HeapFile> hf(new HeapFile(bp, tuple_size, options));
  PageId id = first_page;
  while (id != kInvalidPageId) {
    NBLB_ASSIGN_OR_RETURN(PageGuard page, bp->FetchPage(id));
    const char* d = page.data();
    if (LoadU16(d) != kPageTypeHeap) {
      return Status::Corruption("not a heap page: " + std::to_string(id));
    }
    if (LoadU16(d + 6) != tuple_size) {
      return Status::Corruption("tuple size mismatch on page " +
                                std::to_string(id));
    }
    const uint16_t used = LoadU16(d + 4);
    hf->tuple_count_ += used;
    if (used < hf->slots_per_page_) {
      hf->pages_with_holes_.push_back(id);
    }
    hf->pages_.push_back(id);
    id = LoadU32(d + 8);
  }
  if (hf->pages_.empty()) {
    return Status::InvalidArgument("heap file has no pages");
  }
  return hf;
}

Result<std::unique_ptr<HeapFile>> HeapFile::AttachTolerant(
    BufferPool* bp, size_t tuple_size, PageId first_page,
    HeapFileOptions options) {
  std::unique_ptr<HeapFile> hf(new HeapFile(bp, tuple_size, options));
  const PageId limit = bp->disk()->num_pages();
  PageId id = first_page;
  while (id != kInvalidPageId && id < limit) {
    NBLB_ASSIGN_OR_RETURN(PageGuard page, bp->FetchPage(id));
    char* d = page.data();
    if (LoadU16(d) != kPageTypeHeap || LoadU16(d + 6) != tuple_size) {
      // A linked-to page that was never flushed as a heap page: the chain
      // ends at the previous page.
      break;
    }
    const uint16_t used = LoadU16(d + 4);
    hf->tuple_count_ += used;
    if (used < hf->slots_per_page_) {
      hf->pages_with_holes_.push_back(id);
    }
    hf->pages_.push_back(id);
    PageId next = LoadU32(d + 8);
    // Cycle guard: the chain extends only at the tail, so any repeat (or a
    // chain longer than the file) means a stale link survived the crash.
    if (hf->pages_.size() > limit ||
        std::find(hf->pages_.begin(), hf->pages_.end(), next) !=
            hf->pages_.end()) {
      next = kInvalidPageId;
    }
    id = next;
  }
  if (hf->pages_.empty()) {
    return Status::Corruption("heap first page is not a heap page");
  }
  // Repair the tail link so later Attach/ForEach walks see a clean chain.
  NBLB_ASSIGN_OR_RETURN(PageGuard tail, bp->FetchPage(hf->pages_.back()));
  if (LoadU32(tail.data() + 8) != kInvalidPageId) {
    StoreU32(tail.data() + 8, kInvalidPageId);
    tail.MarkDirty();
  }
  return hf;
}

Status HeapFile::AppendPage() {
  NBLB_ASSIGN_OR_RETURN(PageGuard page, bp_->NewPage());
  char* d = page.data();
  StoreU16(d + 0, kPageTypeHeap);
  StoreU16(d + 2, static_cast<uint16_t>(slots_per_page_));
  StoreU16(d + 4, 0);
  StoreU16(d + 6, static_cast<uint16_t>(tuple_size_));
  StoreU32(d + 8, kInvalidPageId);
  page.MarkDirty();
  const PageId new_id = page.id();
  page.Release();

  if (!pages_.empty()) {
    NBLB_ASSIGN_OR_RETURN(PageGuard prev, bp_->FetchPage(pages_.back()));
    StoreU32(prev.data() + 8, new_id);
    prev.MarkDirty();
  }
  pages_.push_back(new_id);
  return Status::OK();
}

Result<Rid> HeapFile::Insert(const Slice& tuple) {
  if (tuple.size() != tuple_size_) {
    return Status::InvalidArgument("tuple size mismatch");
  }
  // Optional hole reuse (off by default: the paper's append-to-table policy).
  if (options_.reuse_free_slots) {
    while (!pages_with_holes_.empty()) {
      const PageId id = pages_with_holes_.back();
      NBLB_ASSIGN_OR_RETURN(PageGuard page, bp_->FetchPage(id));
      char* d = page.data();
      const uint16_t used = LoadU16(d + 4);
      if (used >= slots_per_page_) {
        pages_with_holes_.pop_back();
        continue;
      }
      char* bitmap = d + kHeapHeaderSize;
      for (size_t s = 0; s < slots_per_page_; ++s) {
        if (!BitmapGet(bitmap, s)) {
          BitmapSet(bitmap, s, true);
          std::memcpy(d + kHeapHeaderSize + bitmap_bytes_ + s * tuple_size_,
                      tuple.data(), tuple_size_);
          StoreU16(d + 4, used + 1);
          page.MarkDirty();
          ++tuple_count_;
          return Rid(id, static_cast<uint16_t>(s));
        }
      }
      // Bitmap full despite the counter; repair the counter and move on.
      StoreU16(d + 4, static_cast<uint16_t>(slots_per_page_));
      page.MarkDirty();
      pages_with_holes_.pop_back();
    }
  }
  // Append to the last page, extending the chain when full.
  {
    NBLB_ASSIGN_OR_RETURN(PageGuard page, bp_->FetchPage(pages_.back()));
    char* d = page.data();
    const uint16_t used = LoadU16(d + 4);
    if (used < slots_per_page_) {
      char* bitmap = d + kHeapHeaderSize;
      // The last page only grows at the tail unless holes were punched; find
      // the first free slot.
      for (size_t s = 0; s < slots_per_page_; ++s) {
        if (!BitmapGet(bitmap, s)) {
          BitmapSet(bitmap, s, true);
          std::memcpy(d + kHeapHeaderSize + bitmap_bytes_ + s * tuple_size_,
                      tuple.data(), tuple_size_);
          StoreU16(d + 4, used + 1);
          page.MarkDirty();
          ++tuple_count_;
          return Rid(page.id(), static_cast<uint16_t>(s));
        }
      }
      return Status::Corruption("heap page counter/bitmap mismatch");
    }
  }
  NBLB_RETURN_NOT_OK(AppendPage());
  return Insert(tuple);
}

Status HeapFile::Get(const Rid& rid, char* out) {
  NBLB_ASSIGN_OR_RETURN(PageGuard page, bp_->FetchPage(rid.page));
  const char* d = page.data();
  if (LoadU16(d) != kPageTypeHeap) return Status::Corruption("not a heap page");
  if (rid.slot >= slots_per_page_) return Status::OutOfRange("bad slot");
  if (!BitmapGet(d + kHeapHeaderSize, rid.slot)) {
    return Status::NotFound("no tuple at " + rid.ToString());
  }
  std::memcpy(out, d + kHeapHeaderSize + bitmap_bytes_ + rid.slot * tuple_size_,
              tuple_size_);
  return Status::OK();
}

Status HeapFile::Get(const Rid& rid, std::string* out) {
  out->resize(tuple_size_);
  return Get(rid, out->data());
}

Status HeapFile::GetBatch(const std::vector<Rid>& rids,
                          std::vector<std::string>* tuples,
                          std::vector<Status>* statuses) {
  tuples->assign(rids.size(), std::string());
  statuses->assign(rids.size(), Status::OK());
  if (rids.empty()) return Status::OK();

  // One pinned guard per distinct page, fetched in batched calls so misses
  // coalesce into overlapped vectored reads. Chunked to a fraction of the
  // pool so a huge batch can never pin more frames than a stripe can spare
  // (the per-op path held one pin at a time; wholesale ResourceExhausted on
  // a big batch would be a regression). Chunks are pipelined: the next
  // chunk's miss reads are submitted (StartFetchPages) before the current
  // chunk's tuples are copied out, so the device stays busy while the CPU
  // does the memcpys. The cap leaves room for two chunks pinned at once.
  std::vector<PageId> page_ids;
  page_ids.reserve(rids.size());
  for (const Rid& rid : rids) page_ids.push_back(rid.page);
  std::sort(page_ids.begin(), page_ids.end());
  page_ids.erase(std::unique(page_ids.begin(), page_ids.end()),
                 page_ids.end());
  size_t chunk_cap = std::max<size_t>(8, bp_->num_frames() / 8);
  size_t transient_retries = 0;

  size_t base = 0;
  BufferPool::BatchFetch pending;
  size_t pending_begin = 0, pending_end = 0;
  bool have_pending = false;
  while (base < page_ids.size() || have_pending) {
    if (!have_pending) {
      const size_t end = std::min(base + chunk_cap, page_ids.size());
      auto started = bp_->StartFetchPages(
          std::vector<PageId>(page_ids.begin() + base, page_ids.begin() + end));
      if (!started.ok()) {
        // The cap bounds total pins, not per-stripe pins; an unlucky
        // stripe (or concurrent pinners) can still exhaust. Degrade by
        // halving the chunk — at size 1 this is exactly the old
        // one-pin-at-a-time path, so anything it could serve, this serves.
        if (started.status().IsResourceExhausted()) {
          if (chunk_cap > 1) {
            chunk_cap /= 2;
            RecordFlightEvent(FlightEvent::kChunkHalve, chunk_cap);
            continue;
          }
          // Even a single-page fetch can see transient pressure: a frame
          // we piggybacked on was claimed by a batch that aborted under
          // capacity pressure elsewhere. That resolves as soon as the
          // competing batch unwinds, so yield and retry (bounded) instead
          // of leaking retryable ResourceExhausted to the caller.
          if (transient_retries < kMaxTransientRetries) {
            ++transient_retries;
            RecordFlightEvent(FlightEvent::kChunkRetry, transient_retries);
            // Yield first; back off to short sleeps if the pressure
            // persists, so the bound covers hundreds of milliseconds of
            // real wait (see kMaxTransientRetries).
            if (transient_retries < 64) {
              std::this_thread::yield();
            } else {
              std::this_thread::sleep_for(std::chrono::microseconds(50));
            }
            continue;
          }
        }
        return started.status();
      }
      transient_retries = 0;
      pending = std::move(*started);
      pending_begin = base;
      pending_end = end;
      base = end;
      have_pending = true;
    }
    // Prefetch the next chunk before blocking on the current one — but
    // only when finishing the current chunk depends on nothing but our
    // own reads (see BatchFetch::self_contained; holding a prefetched
    // chunk while blocked on another thread's load can deadlock two
    // pipelining threads against each other). The dependent case is rare
    // and just degrades to sequential chunks.
    BufferPool::BatchFetch ahead;
    size_t ahead_begin = 0, ahead_end = 0;
    bool have_ahead = false;
    if (base < page_ids.size() && pending.self_contained()) {
      const size_t end = std::min(base + chunk_cap, page_ids.size());
      auto started = bp_->StartFetchPages(
          std::vector<PageId>(page_ids.begin() + base, page_ids.begin() + end));
      if (started.ok()) {
        ahead = std::move(*started);
        ahead_begin = base;
        ahead_end = end;
        base = end;
        have_ahead = true;
      } else if (started.status().IsResourceExhausted()) {
        // Not enough spare frames for two chunks in flight: fall back to
        // sequential chunks (and shrink them) rather than failing.
        if (chunk_cap > 1) {
          chunk_cap /= 2;
          RecordFlightEvent(FlightEvent::kChunkHalve, chunk_cap);
        }
      } else {
        (void)bp_->FinishFetchPages(std::move(pending));
        return started.status();
      }
    }
    auto fetched = bp_->FinishFetchPages(std::move(pending));
    have_pending = false;
    if (!fetched.ok()) {
      if (have_ahead) (void)bp_->FinishFetchPages(std::move(ahead));
      // Finish can fail ResourceExhausted too: a load we piggybacked on
      // was cancelled because ITS batch ran out of frames (the claim is
      // marked transiently failed, see BufferPool::WaitForLoad). That is
      // backpressure, not an error — redo from this chunk (the prefetched
      // one included; both dropped every pin above) at half size.
      if (fetched.status().IsResourceExhausted()) {
        base = pending_begin;
        if (chunk_cap > 1) chunk_cap /= 2;
        RecordFlightEvent(FlightEvent::kChunkRetry, chunk_cap);
        std::this_thread::yield();
        continue;
      }
      return fetched.status();
    }
    std::vector<PageGuard> guards = std::move(*fetched);
    const PageId lo = page_ids[pending_begin];
    const PageId hi = page_ids[pending_end - 1];
    const auto chunk_begin = page_ids.begin() + pending_begin;
    const auto chunk_end_it = page_ids.begin() + pending_end;
    TraceTimer copy_span(TracePhase::kCopy);
    for (size_t i = 0; i < rids.size(); ++i) {
      const Rid& rid = rids[i];
      if (rid.page < lo || rid.page > hi) continue;
      const size_t gi = static_cast<size_t>(
          std::lower_bound(chunk_begin, chunk_end_it, rid.page) -
          chunk_begin);
      const char* d = guards[gi].data();
      if (LoadU16(d) != kPageTypeHeap) {
        (*statuses)[i] = Status::Corruption("not a heap page");
        continue;
      }
      if (rid.slot >= slots_per_page_) {
        (*statuses)[i] = Status::OutOfRange("bad slot");
        continue;
      }
      if (!BitmapGet(d + kHeapHeaderSize, rid.slot)) {
        (*statuses)[i] = Status::NotFound("no tuple at " + rid.ToString());
        continue;
      }
      (*tuples)[i].assign(
          d + kHeapHeaderSize + bitmap_bytes_ + rid.slot * tuple_size_,
          tuple_size_);
    }
    if (have_ahead) {
      pending = std::move(ahead);
      pending_begin = ahead_begin;
      pending_end = ahead_end;
      have_pending = true;
    }
  }
  return Status::OK();
}

Status HeapFile::Update(const Rid& rid, const Slice& tuple) {
  if (tuple.size() != tuple_size_) {
    return Status::InvalidArgument("tuple size mismatch");
  }
  NBLB_ASSIGN_OR_RETURN(PageGuard page, bp_->FetchPage(rid.page));
  char* d = page.data();
  if (LoadU16(d) != kPageTypeHeap) return Status::Corruption("not a heap page");
  if (rid.slot >= slots_per_page_) return Status::OutOfRange("bad slot");
  if (!BitmapGet(d + kHeapHeaderSize, rid.slot)) {
    return Status::NotFound("no tuple at " + rid.ToString());
  }
  std::memcpy(d + kHeapHeaderSize + bitmap_bytes_ + rid.slot * tuple_size_,
              tuple.data(), tuple_size_);
  page.MarkDirty();
  return Status::OK();
}

Status HeapFile::Delete(const Rid& rid) {
  NBLB_ASSIGN_OR_RETURN(PageGuard page, bp_->FetchPage(rid.page));
  char* d = page.data();
  if (LoadU16(d) != kPageTypeHeap) return Status::Corruption("not a heap page");
  if (rid.slot >= slots_per_page_) return Status::OutOfRange("bad slot");
  char* bitmap = d + kHeapHeaderSize;
  if (!BitmapGet(bitmap, rid.slot)) {
    return Status::NotFound("no tuple at " + rid.ToString());
  }
  BitmapSet(bitmap, rid.slot, false);
  StoreU16(d + 4, LoadU16(d + 4) - 1);
  page.MarkDirty();
  --tuple_count_;
  if (options_.reuse_free_slots) {
    pages_with_holes_.push_back(rid.page);
  }
  return Status::OK();
}

Status HeapFile::ForEach(
    const std::function<Status(const Rid&, const char*)>& fn) {
  for (PageId id : pages_) {
    NBLB_ASSIGN_OR_RETURN(PageGuard page, bp_->FetchPage(id));
    const char* d = page.data();
    const char* bitmap = d + kHeapHeaderSize;
    for (size_t s = 0; s < slots_per_page_; ++s) {
      if (BitmapGet(bitmap, s)) {
        NBLB_RETURN_NOT_OK(fn(Rid(id, static_cast<uint16_t>(s)),
                              d + kHeapHeaderSize + bitmap_bytes_ +
                                  s * tuple_size_));
      }
    }
  }
  return Status::OK();
}

Result<HeapFileStats> HeapFile::ComputeStats() {
  HeapFileStats st;
  st.pages = pages_.size();
  st.capacity_slots = pages_.size() * slots_per_page_;
  for (PageId id : pages_) {
    NBLB_ASSIGN_OR_RETURN(PageGuard page, bp_->FetchPage(id));
    st.used_slots += LoadU16(page.data() + 4);
  }
  return st;
}

}  // namespace nblb
