// IoRing: a minimal io_uring wrapper over the raw syscall ABI.
//
// Speaks <linux/io_uring.h> directly — io_uring_setup / io_uring_enter plus
// the mmap'd submission and completion rings — so the backend needs no
// liburing link dependency (liburing is a userspace convenience wrapper over
// exactly this ABI; CMake detects either header and compiles this file out
// entirely elsewhere, see NBLB_HAVE_IO_URING).
//
// Threading contract: the caller serializes the producer side (PushReadv /
// Flush) and the consumer side (Reap / WaitCqe) independently; one producer
// and one consumer may run concurrently (the ring head/tail accesses use
// acquire/release pairs against the kernel and against each other).
//
// Creation can fail at runtime even when compiled in — containers commonly
// seccomp-block io_uring, and kernels can disable it via the
// `io_uring_disabled` sysctl. TryCreate returns nullptr in that case and the
// DiskManager degrades to its preadv worker-thread backend.

#pragma once

#include <sys/uio.h>

#include <cstdint>
#include <memory>

#if !NBLB_HAVE_IO_URING

namespace nblb {

/// Stub for builds without the io_uring backend (-DNBLB_IO_URING=OFF or
/// no kernel header): TryCreate always fails, so the DiskManager resolves
/// to the preadv thread fallback and never calls the other members. A
/// complete type is still needed — DiskManager holds a
/// std::unique_ptr<IoRing>.
class IoRing {
 public:
  struct Cqe {
    uint64_t user_data = 0;
    int32_t res = 0;
  };
  static std::unique_ptr<IoRing> TryCreate(unsigned) { return nullptr; }
  unsigned sq_capacity() const { return 0; }
  unsigned cq_capacity() const { return 0; }
  bool PushReadv(int, const struct iovec*, unsigned, uint64_t, uint64_t) {
    return false;
  }
  bool PushWritev(int, const struct iovec*, unsigned, uint64_t, uint64_t) {
    return false;
  }
  bool PushAccept(int, uint64_t) { return false; }
  bool PushRecv(int, void*, unsigned, uint64_t) { return false; }
  bool PushSend(int, const void*, unsigned, uint64_t) { return false; }
  bool PushCancel(uint64_t, uint64_t) { return false; }
  int Flush() { return -1; }
  size_t Reap(Cqe*, size_t) { return 0; }
  int WaitCqe() { return -1; }
};

}  // namespace nblb

#else  // NBLB_HAVE_IO_URING

#include <linux/io_uring.h>

namespace nblb {

class IoRing {
 public:
  /// \brief One reaped completion: the submitter's user_data and the op's
  /// result (bytes transferred, or -errno).
  struct Cqe {
    uint64_t user_data = 0;
    int32_t res = 0;
  };

  /// \brief Creates a ring with at least `entries` submission slots, or
  /// returns nullptr when the kernel refuses (seccomp, sysctl, old kernel).
  static std::unique_ptr<IoRing> TryCreate(unsigned entries);

  ~IoRing();
  IoRing(const IoRing&) = delete;
  IoRing& operator=(const IoRing&) = delete;

  unsigned sq_capacity() const { return sq_entries_; }
  /// In-flight ops must stay below this or completions could overflow.
  unsigned cq_capacity() const { return cq_entries_; }

  /// \brief Queues one IORING_OP_READV. `iov` must stay alive until the
  /// completion is reaped. Returns false when the SQ is full (Flush and
  /// retry).
  bool PushReadv(int fd, const struct iovec* iov, unsigned nr_iov,
                 uint64_t offset, uint64_t user_data);

  /// \brief Queues one IORING_OP_WRITEV (same contract as PushReadv: the
  /// iov — and the source buffers it points at — must stay alive until the
  /// completion is reaped; false means SQ full, Flush and retry).
  bool PushWritev(int fd, const struct iovec* iov, unsigned nr_iov,
                  uint64_t offset, uint64_t user_data);

  // Socket ops for the network front end (src/net/server.cc). Availability
  // differs from file ops — IORING_OP_RECV/SEND need kernel >= 5.6 — so the
  // server runtime-probes a loopback recv before committing to the ring
  // (see NetServer) and falls back to epoll, mirroring the DiskManager's
  // probe-then-degrade discipline.

  /// \brief Queues one IORING_OP_ACCEPT on a listening socket. The peer
  /// address is discarded; the cqe res is the accepted fd or -errno.
  bool PushAccept(int listen_fd, uint64_t user_data);

  /// \brief Queues one IORING_OP_RECV into `buf` (alive until reaped); cqe
  /// res is bytes received, 0 on orderly peer shutdown, or -errno.
  bool PushRecv(int fd, void* buf, unsigned len, uint64_t user_data);

  /// \brief Queues one IORING_OP_SEND of `buf` (alive until reaped; sent
  /// with MSG_NOSIGNAL); cqe res is bytes sent or -errno.
  bool PushSend(int fd, const void* buf, unsigned len, uint64_t user_data);

  /// \brief Queues one IORING_OP_ASYNC_CANCEL targeting the in-flight op
  /// submitted with `target_user_data`. The canceled op still produces its
  /// own cqe (-ECANCELED, or its real result if it won the race); the
  /// cancel op's cqe reports whether a target was found. Used by the
  /// NetServer's shutdown drain to retire a pending ACCEPT.
  bool PushCancel(uint64_t target_user_data, uint64_t user_data);

  /// \brief Submits every queued sqe to the kernel. 0 on success, -errno.
  int Flush();

  /// \brief Reaps up to `max` available completions without blocking.
  size_t Reap(Cqe* out, size_t max);

  /// \brief Blocks until at least one completion is available (returns
  /// immediately if one already is). 0 on success, -errno.
  int WaitCqe();

 private:
  IoRing() = default;

  /// Shared producer path: raw sqe fields (addr/len/off/op-flags).
  bool PushRaw(uint8_t opcode, int fd, uint64_t addr, unsigned len,
               uint64_t offset, uint32_t op_flags, uint64_t user_data);

  /// Shared producer path for PushReadv/PushWritev.
  bool PushOp(uint8_t opcode, int fd, const struct iovec* iov,
              unsigned nr_iov, uint64_t offset, uint64_t user_data);

  int fd_ = -1;
  unsigned sq_entries_ = 0;
  unsigned cq_entries_ = 0;
  unsigned to_submit_ = 0;  ///< pushed but not yet submitted

  // Mapped regions (cq may alias sq under IORING_FEAT_SINGLE_MMAP).
  void* sq_ptr_ = nullptr;
  size_t sq_map_len_ = 0;
  void* cq_ptr_ = nullptr;
  size_t cq_map_len_ = 0;
  struct io_uring_sqe* sqes_ = nullptr;
  size_t sqes_map_len_ = 0;

  // Ring field pointers into the mapped regions.
  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned* sq_mask_ = nullptr;
  unsigned* sq_array_ = nullptr;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned* cq_mask_ = nullptr;
  struct io_uring_cqe* cqes_ = nullptr;
};

}  // namespace nblb

#endif  // NBLB_HAVE_IO_URING
