#include "exec/database.h"

namespace nblb {

Result<std::unique_ptr<Database>> Database::Open(DatabaseOptions options) {
  std::unique_ptr<Database> db(new Database(options));
  if (options.enable_latency_model) {
    db->latency_.reset(new LatencyModel(options.latency, &db->clock_));
  }
  AsyncIoOptions aio;
  aio.backend = options.io_backend;
  aio.queue_depth = options.io_queue_depth;
  aio.io_threads = options.io_threads;
  db->disk_.reset(new DiskManager(options.path, options.page_size,
                                  db->latency_.get(), options.direct_io,
                                  aio));
  NBLB_RETURN_NOT_OK(db->disk_->Open());
  db->bp_.reset(new BufferPool(db->disk_.get(), options.buffer_pool_frames,
                               options.buffer_pool_stripes));
  db->bp_->set_sync_writeback(options.sync_writeback);
  if (options.flusher_interval_us > 0) {
    db->bp_->StartFlusher(options.flusher_interval_us,
                          options.flush_batch_pages);
  }
  db->metrics_.reset(new MetricsRegistry());
  db->disk_->RegisterMetrics(db->metrics_.get(), "disk.");
  db->bp_->RegisterMetrics(db->metrics_.get(), "buffer_pool.");
  return db;
}

Database::~Database() {
  tables_.clear();
  metrics_.reset();  // entries point into bp_/disk_; drop them first
  bp_.reset();
  if (disk_) (void)disk_->Close();
}

Result<Table*> Database::CreateTable(const std::string& name, Schema schema,
                                     TableOptions options) {
  if (tables_.count(name)) {
    return Status::AlreadyExists("table exists: " + name);
  }
  NBLB_ASSIGN_OR_RETURN(TableId tid, catalog_.CreateTable(name, schema));
  NBLB_ASSIGN_OR_RETURN(auto table,
                        Table::Create(bp_.get(), std::move(schema), options));
  (void)tid;
  Table* ptr = table.get();
  tables_.emplace(name, std::move(table));
  return ptr;
}

Result<Table*> Database::AttachTable(const std::string& name, Schema schema,
                                     TableOptions options,
                                     PageId heap_first_page,
                                     PageId btree_meta_page) {
  if (tables_.count(name)) {
    return Status::AlreadyExists("table exists: " + name);
  }
  NBLB_ASSIGN_OR_RETURN(TableId tid, catalog_.CreateTable(name, schema));
  NBLB_ASSIGN_OR_RETURN(auto table,
                        Table::Attach(bp_.get(), std::move(schema), options,
                                      heap_first_page, btree_meta_page));
  (void)tid;
  Table* ptr = table.get();
  tables_.emplace(name, std::move(table));
  return ptr;
}

Result<Table*> Database::AttachTableRebuild(const std::string& name,
                                            Schema schema,
                                            TableOptions options,
                                            PageId heap_first_page) {
  if (tables_.count(name)) {
    return Status::AlreadyExists("table exists: " + name);
  }
  NBLB_ASSIGN_OR_RETURN(TableId tid, catalog_.CreateTable(name, schema));
  NBLB_ASSIGN_OR_RETURN(auto table,
                        Table::AttachRebuild(bp_.get(), std::move(schema),
                                             options, heap_first_page));
  (void)tid;
  Table* ptr = table.get();
  tables_.emplace(name, std::move(table));
  return ptr;
}

Result<Table*> Database::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no such table: " + name);
  return it->second.get();
}

Status Database::Checkpoint() {
  if (checkpoint_pre_) NBLB_RETURN_NOT_OK(checkpoint_pre_());
  NBLB_RETURN_NOT_OK(bp_->FlushAll());
  NBLB_RETURN_NOT_OK(disk_->Sync());
  if (checkpoint_post_) return checkpoint_post_();
  return Status::OK();
}

}  // namespace nblb
