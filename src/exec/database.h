// Database: the top-level facade — one backing file, one buffer pool, a
// catalog of tables. This is the entry point used by the examples.

#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "catalog/catalog.h"
#include "common/result.h"
#include "common/vclock.h"
#include "exec/table.h"
#include "obs/metrics.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/latency_model.h"

namespace nblb {

/// \brief Database-wide configuration.
struct DatabaseOptions {
  /// Backing file path.
  std::string path = "nblb.db";
  /// Page size in bytes.
  size_t page_size = kDefaultPageSize;
  /// Buffer pool capacity in pages.
  size_t buffer_pool_frames = 1024;
  /// Buffer pool stripes: 0 picks automatically from the frame count (good
  /// for pools shared by many threads). Use 1 for single-threaded pools —
  /// one global CLOCK uses the full capacity, with no per-stripe imbalance
  /// when the working set approaches the pool size.
  size_t buffer_pool_stripes = 0;
  /// Simulated storage latency (disabled charges nothing; see DESIGN.md §4).
  LatencyModelOptions latency;
  bool enable_latency_model = false;
  /// Open the backing file with O_DIRECT so buffer-pool misses pay real
  /// device latency instead of hitting the OS page cache (see
  /// DiskManager).
  bool direct_io = false;
  /// Async miss-read engine: kAuto uses io_uring when compiled in and the
  /// kernel permits it, kThreads forces the preadv worker-pool fallback
  /// (also forceable at runtime via NBLB_IO_BACKEND=threads).
  IoBackend io_backend = IoBackend::kAuto;
  /// Max in-flight async ops (io_uring ring size; reads and writes share
  /// the budget).
  size_t io_queue_depth = 64;
  /// Worker threads for the preadv/pwritev fallback backend (they serve
  /// both async reads and async write-back when io_uring is unavailable).
  size_t io_threads = 4;
  /// Background dirty-page flusher cadence in microseconds; 0 (default)
  /// disables the flusher and write-back rides the evicting thread as
  /// before.
  uint64_t flusher_interval_us = 0;
  /// Max dirty pages written back per flusher pass.
  size_t flush_batch_pages = 64;
  /// Measurement/debug baseline: force every write-back path (flusher,
  /// eviction, FlushAll) to synchronous one-page pwrite instead of the
  /// batched async pipeline (see BufferPool::set_sync_writeback).
  bool sync_writeback = false;
};

/// \brief Owns the storage stack and the table registry.
class Database {
 public:
  /// \brief Opens (creating if needed) the backing file.
  static Result<std::unique_ptr<Database>> Open(DatabaseOptions options);

  ~Database();
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// \brief Creates a table; the name must be unused.
  Result<Table*> CreateTable(const std::string& name, Schema schema,
                             TableOptions options);

  /// \brief Reattaches a table to existing heap/index structures (clean
  /// shutdown; roots come from the superblock). See Table::Attach.
  Result<Table*> AttachTable(const std::string& name, Schema schema,
                             TableOptions options, PageId heap_first_page,
                             PageId btree_meta_page);

  /// \brief Crash-recovery reattach: tolerant heap walk + index rebuild
  /// from the heap. See Table::AttachRebuild.
  Result<Table*> AttachTableRebuild(const std::string& name, Schema schema,
                                    TableOptions options,
                                    PageId heap_first_page);

  /// \brief Looks up a table by name.
  Result<Table*> GetTable(const std::string& name);

  BufferPool* buffer_pool() { return bp_.get(); }
  DiskManager* disk() { return disk_.get(); }
  VirtualClock* clock() { return &clock_; }
  Catalog* catalog() { return &catalog_; }
  const DatabaseOptions& options() const { return options_; }

  /// \brief Unified metrics registry covering this database's storage stack
  /// ("disk.*" and "buffer_pool.*" at Open; owners of this Database — e.g.
  /// Shard — register their own layers into it too).
  MetricsRegistry* metrics() { return metrics_.get(); }

  /// \brief One JSON document with every registered metric (counters,
  /// gauges, histograms) across the disk and buffer-pool layers plus
  /// anything registered on top.
  std::string DumpMetrics() const { return metrics_->Snapshot().ToJson(); }

  /// \brief Flushes all dirty pages and syncs the file. With a checkpoint
  /// extension installed (see below), this is the durable-checkpoint entry
  /// point: pre-hook -> FlushAll -> fsync -> post-hook.
  Status Checkpoint();

  /// \brief Installs durability hooks around Checkpoint. The owning Shard
  /// uses `pre` to commit pending WAL records and persist index metadata
  /// before the flush, and `post` to publish the superblock (advancing the
  /// recovery LSN) and reclaim WAL space after the data file is synced.
  /// Either hook may be null. Hook errors abort the checkpoint.
  void SetCheckpointExtension(std::function<Status()> pre,
                              std::function<Status()> post) {
    checkpoint_pre_ = std::move(pre);
    checkpoint_post_ = std::move(post);
  }

 private:
  explicit Database(DatabaseOptions options) : options_(std::move(options)) {}

  DatabaseOptions options_;
  VirtualClock clock_;
  std::unique_ptr<LatencyModel> latency_;
  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> bp_;
  /// Declared after disk_/bp_ so it is destroyed first: registry entries
  /// point into the components, so the registry must die before they do.
  std::unique_ptr<MetricsRegistry> metrics_;
  Catalog catalog_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
  std::function<Status()> checkpoint_pre_;
  std::function<Status()> checkpoint_post_;
};

}  // namespace nblb
