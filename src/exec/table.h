// Table: heap file + primary B+Tree index + in-page index cache, glued by
// the row/key codecs. This is the integration point where the paper's §2.1
// read path lives:
//
//   lookup(key, projection):
//     leaf = index.FindLeaf(key); tid = leaf[key]
//     if projection ⊆ key ∪ cached fields and cache hit on tid:
//         answer straight from the index page          <- no heap access
//     else:
//         row = heap[tid]; cache.Populate(leaf, tid, cached fields)
//
// Updates append invalidation predicates (§2.1.2) before touching the heap.

#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/index_cache.h"
#include "catalog/key_codec.h"
#include "catalog/row_codec.h"
#include "catalog/schema.h"
#include "common/result.h"
#include "index/btree.h"
#include "storage/buffer_pool.h"
#include "storage/heap_file.h"

namespace nblb {

/// \brief Per-table configuration.
struct TableOptions {
  /// Schema column indexes forming the primary key (significance order).
  std::vector<size_t> key_columns;
  /// Columns replicated into the index cache (must be disjoint from key
  /// columns to be useful; stable, rarely updated fields per §2.1.4).
  std::vector<size_t> cached_columns;
  /// Enable the in-page index cache.
  bool enable_index_cache = true;
  /// Reuse heap holes left by deletes (default off: append-to-table).
  bool reuse_free_slots = false;
  /// Index cache tuning.
  IndexCacheOptions cache_options;
};

/// \brief Read-path counters distinguishing the paper's three regimes.
struct TableStats {
  uint64_t lookups = 0;
  uint64_t answered_from_cache = 0;  ///< no heap access at all
  uint64_t heap_fetches = 0;
  uint64_t inserts = 0;
  uint64_t updates = 0;
  uint64_t deletes = 0;
};

/// \brief A table with one primary index. Not thread safe for structural
/// mutations; see BTree concurrency notes.
class Table {
 public:
  /// \brief Creates the backing heap + index inside `bp`'s file.
  static Result<std::unique_ptr<Table>> Create(BufferPool* bp, Schema schema,
                                               TableOptions options);

  /// \brief Reattaches to existing structures after a clean shutdown: walks
  /// the heap chain from `heap_first_page` and opens the B+Tree at
  /// `btree_meta_page`. Both roots come from the superblock.
  static Result<std::unique_ptr<Table>> Attach(BufferPool* bp, Schema schema,
                                               TableOptions options,
                                               PageId heap_first_page,
                                               PageId btree_meta_page);

  /// \brief Crash-recovery attach: tolerant heap walk (a torn tail link
  /// ends the chain) plus a FRESH index rebuilt by scanning the heap. The
  /// on-disk index is untrusted after a crash — the flusher persists
  /// arbitrary page subsets, so a half-persisted split can dangle — and a
  /// heap scan is ground truth. If post-checkpoint churn left two live
  /// tuples for one key (delete unflushed + reinsert flushed), the later
  /// tuple in chain order wins and the older one is heap-deleted; the WAL
  /// replay that follows re-applies the authoritative values either way.
  /// Old index pages are leaked as dead space (vacuum is future work).
  static Result<std::unique_ptr<Table>> AttachRebuild(BufferPool* bp,
                                                      Schema schema,
                                                      TableOptions options,
                                                      PageId heap_first_page);

  // ---- Write path --------------------------------------------------------

  /// \brief Inserts a full row; fails AlreadyExists on a duplicate key.
  Status Insert(const Row& row);

  /// \brief Idempotent put: Insert, falling back to UpdateByKey when the
  /// key already exists. WAL replay applies records through this.
  Status UpsertByKey(const Row& row);

  /// \brief Replaces the non-key columns of the row with key `key_values`.
  /// Logs an invalidation predicate so no cache serves the old version.
  Status UpdateByKey(const std::vector<Value>& key_values, const Row& new_row);

  /// \brief Deletes by key (index entry, heap tuple, cache predicate).
  Status DeleteByKey(const std::vector<Value>& key_values);

  // ---- Read path ---------------------------------------------------------

  /// \brief Full-row point lookup through the index (heap access).
  Result<Row> GetByKey(const std::vector<Value>& key_values);

  /// \brief Batched full-row point lookups. Pushes one Result per key onto
  /// `out`, in input order. Keys are sorted internally so the B+Tree descent
  /// is shared across the batch (BTree::GetBatch) and the heap tuples are
  /// read with one batched page fetch (HeapFile::GetBatch -> vectored miss
  /// I/O). Per-key NotFound lands in `out`; the returned Status covers
  /// infrastructure failures only.
  Status GetBatchByKey(const std::vector<std::vector<Value>>& keys,
                       std::vector<Result<Row>>* out);

  /// \brief Projected point lookup; served from the index cache when the
  /// projection is covered by key ∪ cached columns and the item is cached.
  /// Returns values in `project_columns` order.
  Result<Row> LookupProjected(const std::vector<Value>& key_values,
                              const std::vector<size_t>& project_columns);

  /// \brief Physically relocates a tuple to the end of the heap
  /// (delete-then-append, §3.1) and repoints the index. Returns the new RID.
  Result<Rid> Relocate(const std::vector<Value>& key_values);

  /// \brief Scans all rows in heap order.
  Status ForEachRow(const std::function<Status(const Rid&, const Row&)>& fn);

  // ---- Introspection ------------------------------------------------------

  const Schema& schema() const { return schema_; }
  const TableOptions& options() const { return options_; }
  const TableStats& stats() const { return stats_; }
  void ResetStats() { stats_ = TableStats{}; }

  HeapFile* heap() { return heap_.get(); }
  BTree* index() { return index_.get(); }
  /// nullptr when the index cache is disabled.
  IndexCache* cache() { return cache_.get(); }
  const KeyCodec& key_codec() const { return *key_codec_; }
  const RowCodec& row_codec() const { return *row_codec_; }
  BufferPool* buffer_pool() { return bp_; }

  /// \brief True if every column in `project_columns` is available from the
  /// index alone (key column or cached column).
  bool ProjectionCoveredByIndex(const std::vector<size_t>& project_columns) const;

 private:
  Table(BufferPool* bp, Schema schema, TableOptions options);

  /// Validation + codec wiring shared by Attach/AttachRebuild (heap and
  /// index are filled in by the caller).
  static Result<std::unique_ptr<Table>> MakeShell(BufferPool* bp,
                                                  Schema schema,
                                                  TableOptions options);

  /// Builds the cache payload (cached columns, fixed width) from a full row.
  Result<std::string> BuildCachePayload(const Row& row) const;

  /// Assembles the projected result from key values + cached payload bytes.
  Row AssembleFromIndex(const std::vector<Value>& key_values,
                        const char* cache_payload,
                        const std::vector<size_t>& project_columns) const;

  BufferPool* bp_;
  Schema schema_;
  TableOptions options_;
  Schema cache_schema_;  // projected schema of cached columns
  std::unique_ptr<RowCodec> row_codec_;
  std::unique_ptr<RowCodec> cache_codec_;
  std::unique_ptr<KeyCodec> key_codec_;
  std::unique_ptr<HeapFile> heap_;
  std::unique_ptr<BTree> index_;
  std::unique_ptr<IndexCache> cache_;
  TableStats stats_;
};

}  // namespace nblb
