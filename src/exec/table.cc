#include "exec/table.h"

#include <algorithm>

#include "common/logging.h"
#include "index/btree_page.h"

namespace nblb {

Table::Table(BufferPool* bp, Schema schema, TableOptions options)
    : bp_(bp), schema_(std::move(schema)), options_(std::move(options)) {}

Result<std::unique_ptr<Table>> Table::Create(BufferPool* bp, Schema schema,
                                             TableOptions options) {
  if (options.key_columns.empty()) {
    return Status::InvalidArgument("table requires key columns");
  }
  for (size_t c : options.key_columns) {
    if (c >= schema.num_columns()) {
      return Status::InvalidArgument("key column out of range");
    }
  }
  for (size_t c : options.cached_columns) {
    if (c >= schema.num_columns()) {
      return Status::InvalidArgument("cached column out of range");
    }
  }
  std::unique_ptr<Table> t(new Table(bp, std::move(schema), options));
  t->row_codec_.reset(new RowCodec(&t->schema_));
  t->key_codec_.reset(new KeyCodec(&t->schema_, options.key_columns));
  t->cache_schema_ = t->schema_.Project(options.cached_columns);
  t->cache_codec_.reset(new RowCodec(&t->cache_schema_));

  NBLB_ASSIGN_OR_RETURN(auto heap,
                        HeapFile::Create(bp, t->schema_.row_size(),
                                         HeapFileOptions{options.reuse_free_slots}));
  t->heap_ = std::move(heap);

  BTreeOptions bt;
  bt.key_size = static_cast<uint16_t>(t->key_codec_->key_size());
  bt.leaf_payload_size = 8;
  const bool want_cache =
      options.enable_index_cache && !options.cached_columns.empty();
  if (want_cache) {
    const size_t item = 8 + t->cache_schema_.row_size();
    if (item > kMaxCacheItemSize) {
      return Status::InvalidArgument("cached columns too wide for cache item");
    }
    bt.cache_item_size = static_cast<uint16_t>(item);
  }
  NBLB_ASSIGN_OR_RETURN(auto index, BTree::Create(bp, bt));
  t->index_ = std::move(index);

  if (want_cache) {
    t->cache_.reset(new IndexCache(t->index_.get(), options.cache_options));
  }
  return t;
}

Result<std::unique_ptr<Table>> Table::Attach(BufferPool* bp, Schema schema,
                                             TableOptions options,
                                             PageId heap_first_page,
                                             PageId btree_meta_page) {
  NBLB_ASSIGN_OR_RETURN(auto t, MakeShell(bp, std::move(schema), options));
  NBLB_ASSIGN_OR_RETURN(
      auto heap,
      HeapFile::Attach(bp, t->schema_.row_size(), heap_first_page,
                       HeapFileOptions{options.reuse_free_slots}));
  t->heap_ = std::move(heap);
  NBLB_ASSIGN_OR_RETURN(auto index, BTree::Open(bp, btree_meta_page));
  if (index->options().key_size != t->key_codec_->key_size()) {
    return Status::Corruption("index key size does not match schema");
  }
  t->index_ = std::move(index);
  if (options.enable_index_cache && !options.cached_columns.empty()) {
    t->cache_.reset(new IndexCache(t->index_.get(), options.cache_options));
  }
  return t;
}

Result<std::unique_ptr<Table>> Table::AttachRebuild(BufferPool* bp,
                                                    Schema schema,
                                                    TableOptions options,
                                                    PageId heap_first_page) {
  NBLB_ASSIGN_OR_RETURN(auto t, MakeShell(bp, std::move(schema), options));
  NBLB_ASSIGN_OR_RETURN(
      auto heap,
      HeapFile::AttachTolerant(bp, t->schema_.row_size(), heap_first_page,
                               HeapFileOptions{options.reuse_free_slots}));
  t->heap_ = std::move(heap);

  BTreeOptions bt;
  bt.key_size = static_cast<uint16_t>(t->key_codec_->key_size());
  bt.leaf_payload_size = 8;
  const bool want_cache =
      options.enable_index_cache && !options.cached_columns.empty();
  if (want_cache) {
    const size_t item = 8 + t->cache_schema_.row_size();
    if (item > kMaxCacheItemSize) {
      return Status::InvalidArgument("cached columns too wide for cache item");
    }
    bt.cache_item_size = static_cast<uint16_t>(item);
  }
  NBLB_ASSIGN_OR_RETURN(auto index, BTree::Create(bp, bt));
  t->index_ = std::move(index);

  // Rebuild the index from the surviving heap tuples. Chain order is
  // insertion order under the default append-only placement, so on a
  // duplicate key the tuple seen later is the younger one: repoint the
  // index at it and drop the stale twin from the heap.
  std::vector<std::pair<Rid, Rid>> stale;  // (old winner rid, unused)
  Status walk = t->heap_->ForEach([&](const Rid& rid, const char* bytes) {
    Row row = t->row_codec_->Decode(bytes);
    NBLB_ASSIGN_OR_RETURN(std::string key, t->key_codec_->EncodeFromRow(row));
    Status st = t->index_->Insert(Slice(key), rid.ToU64());
    if (st.IsAlreadyExists()) {
      NBLB_ASSIGN_OR_RETURN(uint64_t old_tid, t->index_->Get(Slice(key)));
      stale.emplace_back(Rid::FromU64(old_tid), rid);
      NBLB_RETURN_NOT_OK(t->index_->SetValue(Slice(key), rid.ToU64()));
      return Status::OK();
    }
    return st;
  });
  NBLB_RETURN_NOT_OK(walk);
  for (const auto& [old_rid, keep] : stale) {
    (void)keep;
    NBLB_RETURN_NOT_OK(t->heap_->Delete(old_rid));
  }

  if (want_cache) {
    t->cache_.reset(new IndexCache(t->index_.get(), options.cache_options));
  }
  return t;
}

Result<std::unique_ptr<Table>> Table::MakeShell(BufferPool* bp, Schema schema,
                                                TableOptions options) {
  if (options.key_columns.empty()) {
    return Status::InvalidArgument("table requires key columns");
  }
  for (size_t c : options.key_columns) {
    if (c >= schema.num_columns()) {
      return Status::InvalidArgument("key column out of range");
    }
  }
  for (size_t c : options.cached_columns) {
    if (c >= schema.num_columns()) {
      return Status::InvalidArgument("cached column out of range");
    }
  }
  std::unique_ptr<Table> t(new Table(bp, std::move(schema), options));
  t->row_codec_.reset(new RowCodec(&t->schema_));
  t->key_codec_.reset(new KeyCodec(&t->schema_, options.key_columns));
  t->cache_schema_ = t->schema_.Project(options.cached_columns);
  t->cache_codec_.reset(new RowCodec(&t->cache_schema_));
  return t;
}

bool Table::ProjectionCoveredByIndex(
    const std::vector<size_t>& project_columns) const {
  for (size_t c : project_columns) {
    const bool in_key =
        std::find(options_.key_columns.begin(), options_.key_columns.end(),
                  c) != options_.key_columns.end();
    const bool in_cache =
        std::find(options_.cached_columns.begin(),
                  options_.cached_columns.end(), c) !=
        options_.cached_columns.end();
    if (!in_key && !in_cache) return false;
  }
  return true;
}

Result<std::string> Table::BuildCachePayload(const Row& row) const {
  Row projected;
  projected.reserve(options_.cached_columns.size());
  for (size_t c : options_.cached_columns) projected.push_back(row[c]);
  return cache_codec_->Encode(projected);
}

Row Table::AssembleFromIndex(const std::vector<Value>& key_values,
                             const char* cache_payload,
                             const std::vector<size_t>& project_columns) const {
  Row out;
  out.reserve(project_columns.size());
  for (size_t c : project_columns) {
    // Key column: take the caller-provided key value.
    auto kit = std::find(options_.key_columns.begin(),
                         options_.key_columns.end(), c);
    if (kit != options_.key_columns.end()) {
      out.push_back(
          key_values[static_cast<size_t>(kit - options_.key_columns.begin())]);
      continue;
    }
    // Cached column: decode from the cache payload.
    auto cit = std::find(options_.cached_columns.begin(),
                         options_.cached_columns.end(), c);
    NBLB_CHECK(cit != options_.cached_columns.end());
    const size_t idx =
        static_cast<size_t>(cit - options_.cached_columns.begin());
    out.push_back(cache_codec_->DecodeColumn(cache_payload, idx));
  }
  return out;
}

Status Table::Insert(const Row& row) {
  NBLB_ASSIGN_OR_RETURN(std::string key, key_codec_->EncodeFromRow(row));
  NBLB_ASSIGN_OR_RETURN(std::string bytes, row_codec_->Encode(row));
  NBLB_ASSIGN_OR_RETURN(Rid rid, heap_->Insert(Slice(bytes)));
  Status st = index_->Insert(Slice(key), rid.ToU64());
  if (!st.ok()) {
    // Roll the heap insert back so the table stays consistent.
    (void)heap_->Delete(rid);
    return st;
  }
  ++stats_.inserts;
  return Status::OK();
}

Status Table::UpsertByKey(const Row& row) {
  NBLB_ASSIGN_OR_RETURN(std::string key, key_codec_->EncodeFromRow(row));
  auto tid = index_->Get(Slice(key));
  if (tid.ok()) {
    if (cache_ != nullptr) {
      NBLB_RETURN_NOT_OK(cache_->OnTupleModified(Slice(key), *tid));
    }
    NBLB_ASSIGN_OR_RETURN(std::string bytes, row_codec_->Encode(row));
    NBLB_RETURN_NOT_OK(heap_->Update(Rid::FromU64(*tid), Slice(bytes)));
    ++stats_.updates;
    return Status::OK();
  }
  if (!tid.status().IsNotFound()) return tid.status();
  return Insert(row);
}

Result<Row> Table::GetByKey(const std::vector<Value>& key_values) {
  ++stats_.lookups;
  NBLB_ASSIGN_OR_RETURN(std::string key, key_codec_->EncodeValues(key_values));
  NBLB_ASSIGN_OR_RETURN(uint64_t tid, index_->Get(Slice(key)));
  std::string bytes;
  NBLB_RETURN_NOT_OK(heap_->Get(Rid::FromU64(tid), &bytes));
  ++stats_.heap_fetches;
  return row_codec_->Decode(bytes.data());
}

Status Table::GetBatchByKey(const std::vector<std::vector<Value>>& keys,
                            std::vector<Result<Row>>* out) {
  stats_.lookups += keys.size();

  // Encode every key, then process them in sorted order so the index descent
  // and the heap page fetches are shared across the batch.
  std::vector<std::string> encoded(keys.size());
  std::vector<Status> key_status(keys.size());
  std::vector<uint32_t> order;
  order.reserve(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    auto enc = key_codec_->EncodeValues(keys[i]);
    if (!enc.ok()) {
      key_status[i] = enc.status();
      continue;
    }
    encoded[i] = std::move(*enc);
    order.push_back(static_cast<uint32_t>(i));
  }
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return encoded[a] < encoded[b];
  });

  std::vector<Slice> sorted_keys;
  sorted_keys.reserve(order.size());
  for (uint32_t i : order) sorted_keys.emplace_back(encoded[i]);
  std::vector<Result<uint64_t>> tids;
  NBLB_RETURN_NOT_OK(index_->GetBatch(sorted_keys, &tids));
  NBLB_CHECK(tids.size() == order.size());

  // Found keys proceed to one batched heap read (rids are in sorted-key
  // order, so their pages are nearly sorted too — long vectored runs).
  std::vector<Rid> rids;
  std::vector<uint32_t> rid_pos;  // input index per rid
  rids.reserve(order.size());
  for (size_t k = 0; k < order.size(); ++k) {
    if (tids[k].ok()) {
      rids.push_back(Rid::FromU64(*tids[k]));
      rid_pos.push_back(order[k]);
    } else {
      key_status[order[k]] = tids[k].status();
    }
  }
  std::vector<std::string> tuples;
  std::vector<Status> tuple_status;
  NBLB_RETURN_NOT_OK(heap_->GetBatch(rids, &tuples, &tuple_status));

  std::vector<Row> rows(keys.size());
  for (size_t k = 0; k < rids.size(); ++k) {
    const uint32_t i = rid_pos[k];
    if (!tuple_status[k].ok()) {
      key_status[i] = tuple_status[k];
      continue;
    }
    ++stats_.heap_fetches;
    rows[i] = row_codec_->Decode(tuples[k].data());
  }
  out->reserve(out->size() + keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    if (key_status[i].ok()) {
      out->push_back(std::move(rows[i]));
    } else {
      out->push_back(key_status[i]);
    }
  }
  return Status::OK();
}

Result<Row> Table::LookupProjected(const std::vector<Value>& key_values,
                                   const std::vector<size_t>& project_columns) {
  ++stats_.lookups;
  NBLB_ASSIGN_OR_RETURN(std::string key, key_codec_->EncodeValues(key_values));

  NBLB_ASSIGN_OR_RETURN(PageGuard leaf, index_->FindLeaf(Slice(key)));
  BTreePageView view(leaf.data(), bp_->page_size());
  size_t pos;
  if (!view.FindExact(Slice(key), &pos)) {
    return Status::NotFound("key not found");
  }
  const uint64_t tid = view.ValueAt(pos);

  const bool covered =
      cache_ != nullptr && ProjectionCoveredByIndex(project_columns);
  char payload[kMaxCacheItemSize];
  if (covered && cache_->Probe(&leaf, tid, payload)) {
    // §2.1.1: "Queries that project a subset of the index key and the cached
    // fields can be answered without retrieving the data pages."
    ++stats_.answered_from_cache;
    return AssembleFromIndex(key_values, payload, project_columns);
  }

  // Miss: fetch the heap tuple and piggy-back cache population.
  std::string bytes;
  NBLB_RETURN_NOT_OK(heap_->Get(Rid::FromU64(tid), &bytes));
  ++stats_.heap_fetches;
  Row full = row_codec_->Decode(bytes.data());
  if (cache_ != nullptr) {
    NBLB_ASSIGN_OR_RETURN(std::string cp, BuildCachePayload(full));
    cache_->Populate(&leaf, tid, Slice(cp));
  }
  Row out;
  out.reserve(project_columns.size());
  for (size_t c : project_columns) out.push_back(full[c]);
  return out;
}

Status Table::UpdateByKey(const std::vector<Value>& key_values,
                          const Row& new_row) {
  NBLB_ASSIGN_OR_RETURN(std::string key, key_codec_->EncodeValues(key_values));
  NBLB_ASSIGN_OR_RETURN(std::string new_key,
                        key_codec_->EncodeFromRow(new_row));
  if (key != new_key) {
    return Status::InvalidArgument("key columns cannot be updated in place");
  }
  NBLB_ASSIGN_OR_RETURN(uint64_t tid, index_->Get(Slice(key)));
  // Invalidate BEFORE the heap write: a concurrent reader either sees the
  // predicate (and drops the cache) or races ahead with the old-but-
  // consistent version.
  if (cache_ != nullptr) {
    NBLB_RETURN_NOT_OK(cache_->OnTupleModified(Slice(key), tid));
  }
  NBLB_ASSIGN_OR_RETURN(std::string bytes, row_codec_->Encode(new_row));
  NBLB_RETURN_NOT_OK(heap_->Update(Rid::FromU64(tid), Slice(bytes)));
  ++stats_.updates;
  return Status::OK();
}

Status Table::DeleteByKey(const std::vector<Value>& key_values) {
  NBLB_ASSIGN_OR_RETURN(std::string key, key_codec_->EncodeValues(key_values));
  NBLB_ASSIGN_OR_RETURN(uint64_t tid, index_->Get(Slice(key)));
  if (cache_ != nullptr) {
    NBLB_RETURN_NOT_OK(cache_->OnTupleModified(Slice(key), tid));
  }
  NBLB_RETURN_NOT_OK(index_->Delete(Slice(key)));
  NBLB_RETURN_NOT_OK(heap_->Delete(Rid::FromU64(tid)));
  ++stats_.deletes;
  return Status::OK();
}

Result<Rid> Table::Relocate(const std::vector<Value>& key_values) {
  NBLB_ASSIGN_OR_RETURN(std::string key, key_codec_->EncodeValues(key_values));
  NBLB_ASSIGN_OR_RETURN(uint64_t tid, index_->Get(Slice(key)));
  const Rid old_rid = Rid::FromU64(tid);
  std::string bytes;
  NBLB_RETURN_NOT_OK(heap_->Get(old_rid, &bytes));
  // §3.1: "relocates hot tuples by deleting then appending them to the end
  // of the table".
  NBLB_RETURN_NOT_OK(heap_->Delete(old_rid));
  NBLB_ASSIGN_OR_RETURN(Rid new_rid, heap_->Insert(Slice(bytes)));
  NBLB_RETURN_NOT_OK(index_->SetValue(Slice(key), new_rid.ToU64()));
  // The old tid may be recycled; make sure no cache serves it.
  if (cache_ != nullptr) {
    NBLB_RETURN_NOT_OK(cache_->OnTupleModified(Slice(key), tid));
  }
  return new_rid;
}

Status Table::ForEachRow(
    const std::function<Status(const Rid&, const Row&)>& fn) {
  return heap_->ForEach([&](const Rid& rid, const char* bytes) {
    return fn(rid, row_codec_->Decode(bytes));
  });
}

}  // namespace nblb
