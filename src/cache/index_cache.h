// IndexCache: the paper's core contribution (§2.1) — recycling B+Tree free
// space as a tuple cache.
//
// Cache items live in the free interval between a leaf's entry region and
// its directory. An item is [8-byte tid+1][cached field bytes]; an all-zero
// tid marks an empty slot. Writes never dirty the page (no extra I/O), are
// guarded by a per-frame try-latch that gives up instead of blocking
// (§2.1.3), and survive until index growth overwrites the slot — hot items
// are kept near the stable point S via the bucket-swap policy so they are
// overwritten last (§2.1.1).

#pragma once

#include <cstdint>

#include "cache/cache_geometry.h"
#include "cache/csn_manager.h"
#include "cache/predicate_log.h"
#include "common/rng.h"
#include "common/slice.h"
#include "index/btree.h"

namespace nblb {

/// Hard cap on cache item size (tid + cached fields).
inline constexpr size_t kMaxCacheItemSize = 512;

/// \brief Where a newly inserted item is placed (ablation A1; the paper uses
/// kRandomFree).
enum class CachePlacementPolicy {
  kRandomFree,     ///< random free slot (paper)
  kInnermostFree,  ///< free slot closest to the stable point
};

/// \brief Tuning knobs for the index cache.
struct IndexCacheOptions {
  /// N: slots per bucket for the swap-toward-S policy.
  size_t bucket_slots = 8;
  /// Predicate log threshold; overflow triggers a full CSN invalidation.
  size_t predicate_log_limit = 1024;
  /// Swap a hit item one bucket toward S (paper behaviour; ablation A1).
  bool swap_on_hit = true;
  CachePlacementPolicy placement = CachePlacementPolicy::kRandomFree;
  uint64_t rng_seed = 0x5eedcafe;
};

/// \brief Operation counters.
struct IndexCacheStats {
  uint64_t probes = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t populates = 0;
  uint64_t populate_skips = 0;
  uint64_t evictions = 0;
  uint64_t swaps = 0;
  uint64_t latch_give_ups = 0;
  uint64_t page_cleanings = 0;      ///< predicate-triggered page zeroings
  uint64_t full_invalidations = 0;  ///< CSNidx bumps

  double HitRate() const {
    return probes == 0 ? 0.0
                       : static_cast<double>(hits) / static_cast<double>(probes);
  }
};

/// \brief Manages the in-page caches of one B+Tree. Thread-compatible: all
/// page-cache mutations go through the per-frame latch; the predicate log and
/// stats are owned by the caller's serialization domain (one IndexCache per
/// executor thread-group).
class IndexCache {
 public:
  /// The tree must have been created with BTreeOptions::cache_item_size > 8.
  IndexCache(BTree* tree, IndexCacheOptions options = {});

  /// \brief Item width: 8-byte tid + cached field payload.
  size_t item_size() const { return item_size_; }
  /// \brief Cached payload width (item_size - 8).
  size_t payload_size() const { return item_size_ - 8; }

  /// \brief Looks for tuple `tid` in the leaf's cache. On a hit, copies
  /// payload_size() bytes into `out` and applies the swap-toward-S policy.
  /// Returns false on miss, invalid CSN, or latch give-up.
  bool Probe(PageGuard* leaf, uint64_t tid, char* out);

  /// \brief Inserts (tid -> payload) into the leaf's cache after a heap
  /// fetch. Evicts from the peripheral bucket when no slot is free. Never
  /// dirties the page; silently skips if the latch is unavailable.
  void Populate(PageGuard* leaf, uint64_t tid, const Slice& payload);

  /// \brief Records that the tuple identified by (index key, tid) was
  /// modified; pages lazily zero their cache when they observe the
  /// predicate. Overflowing the log falls back to a full invalidation.
  Status OnTupleModified(const Slice& key, uint64_t tid);

  /// \brief Bumps CSNidx — O(1) invalidation of every page cache.
  Status InvalidateAll();

  /// \brief Counts live cached items across all leaves (test/debug helper;
  /// walks the whole leaf chain).
  Result<uint64_t> CountCachedItems();

  const IndexCacheStats& stats() const { return stats_; }
  void ResetStats() { stats_ = IndexCacheStats{}; }
  const PredicateLog& predicate_log() const { return log_; }
  BTree* tree() { return tree_; }
  const IndexCacheOptions& options() const { return options_; }

 private:
  /// Validates/repairs the page cache under the latch; returns true if the
  /// cache is usable afterwards.
  bool EnsureCleanLocked(BTreePageView* view);
  static bool KeyInRange(const BTreePageView& view, const Slice& key);
  bool SlotHasTid(const BTreePageView& view, const CacheGeometry& geo,
                  uint64_t tid) const;

  BTree* tree_;
  IndexCacheOptions options_;
  CsnManager csn_;
  PredicateLog log_;
  Rng rng_;
  size_t item_size_;
  size_t page_size_;
  IndexCacheStats stats_;
};

}  // namespace nblb
