// CacheGeometry: slot and bucket arithmetic over a leaf page's free space.
//
// Per §2.1.1 of the paper:
//   - "The cache space is split into slots where the beginning of each slot
//     is aligned to the cache entry size" — slot k occupies absolute page
//     offsets [k*item, (k+1)*item); a slot is usable only if it lies entirely
//     inside the current free interval. Because slot positions are absolute,
//     index growth that clips a slot silently retires it: it simply stops
//     being enumerated, and the bytes may be overwritten at will.
//   - "It is possible to calculate the most stable location S" — the offset
//     the entry and directory regions reach simultaneously at 100% fill.
//   - "The cache is logically split into buckets of N slots each" — we rank
//     usable slots by distance from S (rank 0 = closest) and group ranks into
//     buckets of N. Hits swap toward the inner bucket; evictions pick from
//     the outermost occupied bucket; so the hottest items sit where they
//     survive longest.

#pragma once

#include <cstddef>
#include <cstdint>

#include "index/btree_page.h"

namespace nblb {

/// \brief Immutable snapshot of the cache slot layout of one leaf page.
///
/// Geometry is recomputed from the page header on each access (it changes
/// whenever index entries are inserted or deleted).
class CacheGeometry {
 public:
  /// \brief Derives the layout from a leaf's current free interval.
  /// \param view          the leaf page
  /// \param bucket_slots  N, slots per bucket (>= 1)
  static CacheGeometry FromLeaf(const BTreePageView& view,
                                size_t bucket_slots);

  /// \brief Number of usable slots (0 when the free interval is too small or
  /// caching is disabled on the page).
  size_t num_slots() const {
    return end_slot_ > first_slot_ ? end_slot_ - first_slot_ : 0;
  }

  size_t item_size() const { return item_size_; }
  size_t bucket_slots() const { return bucket_slots_; }
  size_t first_slot() const { return first_slot_; }
  size_t stable_slot() const { return stable_slot_; }

  /// \brief Absolute page offset of slot `slot`.
  size_t SlotOffset(size_t slot) const { return slot * item_size_; }

  /// \brief Stability rank of a usable slot: 0 = closest to the stable point
  /// S, increasing outward (alternating sides until one is exhausted).
  size_t RankOf(size_t slot) const;

  /// \brief Inverse of RankOf: the usable slot with the given rank.
  size_t SlotOfRank(size_t rank) const;

  /// \brief Bucket index of a usable slot (rank / N).
  size_t BucketOfSlot(size_t slot) const {
    return RankOf(slot) / bucket_slots_;
  }

  size_t num_buckets() const {
    return (num_slots() + bucket_slots_ - 1) / bucket_slots_;
  }

  /// \brief Number of ranks in bucket `b` (the last bucket may be short).
  size_t BucketSizeOf(size_t b) const;

 private:
  size_t item_size_ = 0;
  size_t bucket_slots_ = 1;
  size_t first_slot_ = 0;  // inclusive
  size_t end_slot_ = 0;    // exclusive
  size_t stable_slot_ = 0; // clamped into [first_slot_, end_slot_)
};

}  // namespace nblb
