#include "cache/index_cache.h"

#include <cstring>

#include "common/bytes.h"
#include "common/latch.h"
#include "common/logging.h"

namespace nblb {

namespace {

// Slot tags store tid + 1 so that an all-zero slot (freshly zeroed free
// space) reads as "empty" even for the tuple at RID (0,0).
inline uint64_t TagOf(uint64_t tid) { return tid + 1; }

}  // namespace

IndexCache::IndexCache(BTree* tree, IndexCacheOptions options)
    : tree_(tree),
      options_(options),
      csn_(tree),
      rng_(options.rng_seed),
      item_size_(tree->options().cache_item_size),
      page_size_(tree->buffer_pool()->page_size()) {
  NBLB_CHECK_MSG(item_size_ > 8, "cache_item_size must exceed the 8-byte tid");
  NBLB_CHECK_MSG(item_size_ <= kMaxCacheItemSize, "cache item too large");
  NBLB_CHECK(options_.bucket_slots >= 1);
}

bool IndexCache::KeyInRange(const BTreePageView& view, const Slice& key) {
  const size_t n = view.num_entries();
  if (n == 0) return false;
  return view.KeyAt(0).Compare(key) <= 0 && key.Compare(view.KeyAt(n - 1)) <= 0;
}

bool IndexCache::SlotHasTid(const BTreePageView& view, const CacheGeometry& geo,
                            uint64_t tid) const {
  const uint64_t tag = TagOf(tid);
  for (size_t s = geo.first_slot(); s < geo.first_slot() + geo.num_slots();
       ++s) {
    if (DecodeFixed64(view.raw() + geo.SlotOffset(s)) == tag) return true;
  }
  return false;
}

bool IndexCache::EnsureCleanLocked(BTreePageView* view) {
  if (view->cache_item_size() == 0) return false;
  // Invariant 2 (§2.1.2): valid only when CSNp == CSNidx. A stale page is
  // repaired in place: zero the cache space and stamp it current.
  if (!csn_.IsPageValid(*view)) {
    view->ZeroFreeSpace();
    csn_.MarkPageCurrent(view);
    view->set_cache_seq(log_.current_seq());
    return true;
  }
  // Replay predicates the page has not seen yet.
  const uint64_t watermark = view->cache_seq();
  if (log_.current_seq() > watermark) {
    const CacheGeometry geo = CacheGeometry::FromLeaf(*view, options_.bucket_slots);
    const bool match = log_.AnySince(watermark, [&](const Predicate& p) {
      return KeyInRange(*view, Slice(p.key)) || SlotHasTid(*view, geo, p.tid);
    });
    if (match) {
      view->ZeroFreeSpace();
      ++stats_.page_cleanings;
    }
    view->set_cache_seq(log_.current_seq());
  }
  return true;
}

bool IndexCache::Probe(PageGuard* leaf, uint64_t tid, char* out) {
  ++stats_.probes;
  TryLatchGuard latch(*leaf->cache_latch());
  if (!latch.acquired()) {
    // §2.1.3: give up rather than block; a skipped cache read is just a miss.
    ++stats_.latch_give_ups;
    ++stats_.misses;
    return false;
  }
  BTreePageView view(leaf->data(), page_size_);
  if (!EnsureCleanLocked(&view)) {
    ++stats_.misses;
    return false;
  }
  const CacheGeometry geo = CacheGeometry::FromLeaf(view, options_.bucket_slots);
  const uint64_t tag = TagOf(tid);
  const size_t n = geo.num_slots();
  for (size_t s = geo.first_slot(); s < geo.first_slot() + n; ++s) {
    char* slot = view.raw() + geo.SlotOffset(s);
    if (DecodeFixed64(slot) != tag) continue;
    std::memcpy(out, slot + 8, payload_size());
    // Swap one bucket toward the stable point so frequently read items
    // migrate to where index growth overwrites them last.
    if (options_.swap_on_hit) {
      const size_t bucket = geo.BucketOfSlot(s);
      if (bucket > 0) {
        const size_t target_rank = (bucket - 1) * geo.bucket_slots() +
                                   rng_.Uniform(geo.BucketSizeOf(bucket - 1));
        const size_t t = geo.SlotOfRank(target_rank);
        if (t != s) {
          char tmp[kMaxCacheItemSize];
          char* other = view.raw() + geo.SlotOffset(t);
          std::memcpy(tmp, other, item_size_);
          std::memcpy(other, slot, item_size_);
          std::memcpy(slot, tmp, item_size_);
          ++stats_.swaps;
        }
      }
    }
    ++stats_.hits;
    return true;
  }
  ++stats_.misses;
  return false;
}

void IndexCache::Populate(PageGuard* leaf, uint64_t tid, const Slice& payload) {
  NBLB_CHECK(payload.size() == payload_size());
  TryLatchGuard latch(*leaf->cache_latch());
  if (!latch.acquired()) {
    ++stats_.latch_give_ups;
    ++stats_.populate_skips;
    return;
  }
  BTreePageView view(leaf->data(), page_size_);
  if (!EnsureCleanLocked(&view)) {
    ++stats_.populate_skips;
    return;
  }
  const CacheGeometry geo = CacheGeometry::FromLeaf(view, options_.bucket_slots);
  const size_t n = geo.num_slots();
  if (n == 0) {
    ++stats_.populate_skips;
    return;
  }
  const uint64_t tag = TagOf(tid);

  // One pass: find an existing copy, pick a free slot (per placement
  // policy), and track the outermost occupied bucket for eviction.
  size_t existing = SIZE_MAX;
  size_t free_pick = SIZE_MAX;
  size_t free_seen = 0;
  size_t innermost_free_rank = SIZE_MAX;
  size_t max_bucket = 0;
  size_t max_bucket_pick = SIZE_MAX;
  size_t max_bucket_seen = 0;
  for (size_t s = geo.first_slot(); s < geo.first_slot() + n; ++s) {
    const uint64_t t = DecodeFixed64(view.raw() + geo.SlotOffset(s));
    if (t == tag) {
      existing = s;
      break;
    }
    if (t == 0) {
      ++free_seen;
      // Reservoir-sample a uniformly random free slot.
      if (rng_.Uniform(free_seen) == 0) free_pick = s;
      const size_t r = geo.RankOf(s);
      if (r < innermost_free_rank) innermost_free_rank = r;
    } else {
      const size_t b = geo.BucketOfSlot(s);
      if (b > max_bucket) {
        max_bucket = b;
        max_bucket_pick = s;
        max_bucket_seen = 1;
      } else if (b == max_bucket) {
        ++max_bucket_seen;
        if (rng_.Uniform(max_bucket_seen) == 0) max_bucket_pick = s;
      }
    }
  }

  size_t target;
  if (existing != SIZE_MAX) {
    target = existing;  // refresh in place
  } else if (free_seen > 0) {
    target = options_.placement == CachePlacementPolicy::kRandomFree
                 ? free_pick
                 : geo.SlotOfRank(innermost_free_rank);
  } else if (max_bucket_pick != SIZE_MAX) {
    target = max_bucket_pick;  // evict from the peripheral bucket
    ++stats_.evictions;
  } else {
    ++stats_.populate_skips;
    return;
  }

  char* slot = view.raw() + geo.SlotOffset(target);
  EncodeFixed64(slot, tag);
  std::memcpy(slot + 8, payload.data(), payload.size());
  // Deliberately no MarkDirty (§2.1.1): cache writes must not add disk I/O.
  ++stats_.populates;
}

Status IndexCache::OnTupleModified(const Slice& key, uint64_t tid) {
  log_.Append(key.ToString(), tid);
  if (log_.size() > options_.predicate_log_limit) {
    return InvalidateAll();
  }
  return Status::OK();
}

Status IndexCache::InvalidateAll() {
  NBLB_RETURN_NOT_OK(csn_.InvalidateAll());
  log_.Clear();
  ++stats_.full_invalidations;
  return Status::OK();
}

Result<uint64_t> IndexCache::CountCachedItems() {
  uint64_t count = 0;
  BufferPool* bp = tree_->buffer_pool();
  for (PageId id = tree_->first_leaf_id(); id != kInvalidPageId;) {
    NBLB_ASSIGN_OR_RETURN(PageGuard g, bp->FetchPage(id));
    BTreePageView view(g.data(), page_size_);
    if (csn_.IsPageValid(view)) {
      const CacheGeometry geo =
          CacheGeometry::FromLeaf(view, options_.bucket_slots);
      for (size_t s = geo.first_slot(); s < geo.first_slot() + geo.num_slots();
           ++s) {
        if (DecodeFixed64(view.raw() + geo.SlotOffset(s)) != 0) ++count;
      }
    }
    id = view.next();
  }
  return count;
}

}  // namespace nblb
