#include "cache/predicate_log.h"

namespace nblb {

uint64_t PredicateLog::Append(std::string key, uint64_t tid) {
  Predicate p;
  p.seq = next_seq_++;
  p.key = std::move(key);
  p.tid = tid;
  entries_.push_back(std::move(p));
  return entries_.back().seq;
}

void PredicateLog::ForEachSince(
    uint64_t watermark, const std::function<void(const Predicate&)>& fn) const {
  // Entries are appended in sequence order; scan from the back until the
  // watermark is crossed, then replay forward. For small logs a linear scan
  // is fine; the threshold policy keeps the log small.
  for (const Predicate& p : entries_) {
    if (p.seq > watermark) fn(p);
  }
}

bool PredicateLog::AnySince(
    uint64_t watermark, const std::function<bool(const Predicate&)>& pred) const {
  for (const Predicate& p : entries_) {
    if (p.seq > watermark && pred(p)) return true;
  }
  return false;
}

}  // namespace nblb
