// CsnManager: cache sequence number invariants of §2.1.2.
//
// Invariants (quoted from the paper):
//   1) CSNp <= CSNidx for every page p.
//   2) A page cache is valid only if CSNp == CSNidx.
// Incrementing CSNidx therefore invalidates every page cache in O(1).
// CSNidx lives in the B+Tree meta page and is bumped on every Open(), so
// cache bytes that reached disk before a crash can never be served.

#pragma once

#include <cstdint>

#include "common/result.h"
#include "index/btree.h"
#include "index/btree_page.h"

namespace nblb {

/// \brief Thin policy wrapper over the tree-wide CSN.
class CsnManager {
 public:
  explicit CsnManager(BTree* tree) : tree_(tree) {}

  /// \brief Current CSNidx.
  uint64_t global() const { return tree_->global_csn(); }

  /// \brief Validity test: CSNp == CSNidx.
  bool IsPageValid(const BTreePageView& view) const {
    return view.csn() == global();
  }

  /// \brief Stamps the page as current (CSNp := CSNidx). The caller must
  /// hold the page's cache latch; the write intentionally does not dirty the
  /// page (§2.1.1).
  void MarkPageCurrent(BTreePageView* view) const { view->set_csn(global()); }

  /// \brief Bumps CSNidx, wholesale-invalidating every page cache.
  Status InvalidateAll() { return tree_->BumpGlobalCsn(); }

 private:
  BTree* tree_;
};

}  // namespace nblb
