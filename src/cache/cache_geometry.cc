#include "cache/cache_geometry.h"

#include <algorithm>

#include "common/logging.h"

namespace nblb {

CacheGeometry CacheGeometry::FromLeaf(const BTreePageView& view,
                                      size_t bucket_slots) {
  NBLB_CHECK(bucket_slots >= 1);
  CacheGeometry g;
  g.item_size_ = view.cache_item_size();
  g.bucket_slots_ = bucket_slots;
  if (g.item_size_ == 0) {
    return g;  // caching disabled on this page
  }
  const size_t free_begin = view.FreeBegin();
  const size_t free_end = view.FreeEnd();
  g.first_slot_ = (free_begin + g.item_size_ - 1) / g.item_size_;
  g.end_slot_ = free_end / g.item_size_;
  if (g.end_slot_ <= g.first_slot_) {
    g.end_slot_ = g.first_slot_;  // no usable slots
    return g;
  }
  const size_t stable_point = view.StablePoint();
  size_t s = stable_point / g.item_size_;
  s = std::min(std::max(s, g.first_slot_), g.end_slot_ - 1);
  g.stable_slot_ = s;
  return g;
}

size_t CacheGeometry::RankOf(size_t slot) const {
  NBLB_DCHECK(slot >= first_slot_ && slot < end_slot_);
  const size_t left_avail = stable_slot_ - first_slot_;
  const size_t right_avail = end_slot_ - 1 - stable_slot_;
  const size_t m = std::min(left_avail, right_avail);
  if (slot == stable_slot_) return 0;
  if (slot > stable_slot_) {
    const size_t d = slot - stable_slot_;
    if (d <= m) return 2 * d - 1;     // alternation: right side gets odd ranks
    return 2 * m + (d - m);           // right tail after the left is exhausted
  }
  const size_t d = stable_slot_ - slot;
  if (d <= m) return 2 * d;           // left side gets even ranks
  return 2 * m + (d - m);             // left tail after the right is exhausted
}

size_t CacheGeometry::SlotOfRank(size_t rank) const {
  NBLB_DCHECK(rank < num_slots());
  const size_t left_avail = stable_slot_ - first_slot_;
  const size_t right_avail = end_slot_ - 1 - stable_slot_;
  const size_t m = std::min(left_avail, right_avail);
  if (rank == 0) return stable_slot_;
  if (rank <= 2 * m) {
    const size_t k = (rank + 1) / 2;
    return (rank % 2 == 1) ? stable_slot_ + k : stable_slot_ - k;
  }
  const size_t excess = rank - 2 * m;
  if (right_avail > left_avail) return stable_slot_ + m + excess;
  return stable_slot_ - m - excess;
}

size_t CacheGeometry::BucketSizeOf(size_t b) const {
  const size_t n = num_slots();
  const size_t begin = b * bucket_slots_;
  NBLB_DCHECK(begin < n);
  return std::min(bucket_slots_, n - begin);
}

}  // namespace nblb
