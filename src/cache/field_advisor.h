// CacheFieldAdvisor: workload-driven selection of the columns to cache.
//
// §2.1.4: "we hand picked the fields to cache ... First, the fields should
// be stable (i.e., rarely updated) ... Second, the cached fields should be
// chosen to fully answer a large class of queries. These heuristics are at
// odds with each other, so the optimal choice of fields to cache is
// dependent on the workload, and is an interesting direction for future
// work."
//
// This implements that future-work item: given the query classes (projection
// + frequency) and per-column update rates, greedily pick the column set
// that maximizes covered query frequency net of an update-invalidation
// penalty, under a cache-item byte budget.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "catalog/schema.h"

namespace nblb {

/// \brief One class of queries: what it projects and how often it runs
/// (frequencies across classes should sum to ~1).
struct QueryClass {
  std::vector<size_t> projected_columns;
  double frequency = 0;
};

/// \brief Advisor output.
struct FieldSelection {
  /// Recommended columns to cache, in schema order.
  std::vector<size_t> cached_columns;
  /// Total frequency of query classes fully answerable from key + cache.
  double covered_frequency = 0;
  /// Net score: covered frequency minus the update penalty of the chosen set.
  double score = 0;
  /// Resulting cache item size (8-byte tid + cached field bytes).
  size_t item_size = 8;
  /// Per-step explanation of the greedy choices.
  std::vector<std::string> rationale;
};

/// \brief Workload/DDL inputs for the advisor.
struct FieldAdvisorInput {
  const Schema* schema = nullptr;
  /// Columns already in the index key (always available to cover queries).
  std::vector<size_t> key_columns;
  /// The query classes of the workload.
  std::vector<QueryClass> query_classes;
  /// Per-column update rate (updates touching the column per lookup, or any
  /// proportional measure). Size must equal schema->num_columns().
  std::vector<double> update_rates;
  /// Maximum cache item size in bytes (8-byte tid included).
  size_t max_item_size = 256;
  /// Weight of update churn against covered frequency. Each cached column
  /// costs penalty = update_weight * update_rate(column).
  double update_weight = 1.0;
};

/// \brief Greedy cache-field selection (§2.1.4's two heuristics, reconciled).
class CacheFieldAdvisor {
 public:
  /// \brief Recommends the set of columns to replicate into the index cache.
  /// Deterministic; O(columns^2 * classes).
  static FieldSelection Recommend(const FieldAdvisorInput& input);
};

}  // namespace nblb
