// PredicateLog: the in-memory invalidation log of §2.1.2.
//
// "we create and store predicates that uniquely identify the updated tuples
//  and append them to an in-memory log. When an index page is read during
//  normal query execution, we zero the cache space if any predicates match
//  keys in the page. If the list grows above a threshold, we can increment
//  CSNidx and clear the list."
//
// Each entry records the updated tuple's index key AND its tuple id (RID);
// the tid lets a page that no longer stores the key (e.g. after a delete)
// still detect a matching cached item, which closes the RID-reuse hole.

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

namespace nblb {

/// \brief One logged invalidation predicate.
struct Predicate {
  uint64_t seq = 0;    ///< position in the log (monotone)
  std::string key;     ///< encoded index key of the updated tuple
  uint64_t tid = 0;    ///< packed RID of the updated tuple
};

/// \brief Append-only in-memory predicate log with a sequence watermark.
///
/// Pages remember the sequence up to which they have been cleaned
/// (`cache_seq` in the page header); on read they replay only entries newer
/// than their watermark. Not thread safe; the owning IndexCache serializes.
class PredicateLog {
 public:
  /// \brief Appends a predicate; returns its sequence number.
  uint64_t Append(std::string key, uint64_t tid);

  /// \brief Sequence of the newest entry (0 when empty since creation).
  uint64_t current_seq() const { return next_seq_ - 1; }

  /// \brief Calls fn for every entry with seq > watermark.
  void ForEachSince(uint64_t watermark,
                    const std::function<void(const Predicate&)>& fn) const;

  /// \brief True if any entry newer than `watermark` satisfies `pred`.
  bool AnySince(uint64_t watermark,
                const std::function<bool(const Predicate&)>& pred) const;

  size_t size() const { return entries_.size(); }

  /// \brief Drops all entries (after a full CSN invalidation). Sequence
  /// numbering continues monotonically.
  void Clear() { entries_.clear(); }

 private:
  std::deque<Predicate> entries_;
  uint64_t next_seq_ = 1;
};

}  // namespace nblb
