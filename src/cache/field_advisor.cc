#include "cache/field_advisor.h"

#include <algorithm>
#include <set>

#include "common/logging.h"

namespace nblb {

namespace {

// Frequency of query classes fully answerable from `available` columns.
double CoveredFrequency(const std::vector<QueryClass>& classes,
                        const std::set<size_t>& available) {
  double total = 0;
  for (const QueryClass& qc : classes) {
    bool covered = true;
    for (size_t c : qc.projected_columns) {
      if (!available.count(c)) {
        covered = false;
        break;
      }
    }
    if (covered) total += qc.frequency;
  }
  return total;
}

double UpdatePenalty(const std::vector<double>& rates, double weight,
                     const std::set<size_t>& cached) {
  double total = 0;
  for (size_t c : cached) total += weight * rates[c];
  return total;
}

}  // namespace

FieldSelection CacheFieldAdvisor::Recommend(const FieldAdvisorInput& input) {
  NBLB_CHECK(input.schema != nullptr);
  const Schema& schema = *input.schema;
  NBLB_CHECK(input.update_rates.size() == schema.num_columns());

  std::set<size_t> key_set(input.key_columns.begin(), input.key_columns.end());
  std::set<size_t> available = key_set;  // key columns are free
  std::set<size_t> cached;
  size_t item_size = 8;  // the tuple id

  FieldSelection out;
  auto score_of = [&](const std::set<size_t>& avail,
                      const std::set<size_t>& chosen) {
    return CoveredFrequency(input.query_classes, avail) -
           UpdatePenalty(input.update_rates, input.update_weight, chosen);
  };
  double current_score = score_of(available, cached);

  // Greedy over query classes: covering a class requires its WHOLE missing
  // column set (a single column of a multi-column projection gains nothing),
  // so each step adds the column group that completes the class with the
  // best score gain per byte.
  for (;;) {
    double best_gain_per_byte = 0;
    double best_score = current_score;
    std::vector<size_t> best_group;
    std::string best_name;
    for (const QueryClass& qc : input.query_classes) {
      std::vector<size_t> needed;
      for (size_t c : qc.projected_columns) {
        if (!available.count(c)) needed.push_back(c);
      }
      if (needed.empty()) continue;  // already covered
      size_t bytes = 0;
      for (size_t c : needed) bytes += schema.column(c).ByteSize();
      if (item_size + bytes > input.max_item_size) continue;
      std::set<size_t> avail2 = available;
      std::set<size_t> cached2 = cached;
      for (size_t c : needed) {
        avail2.insert(c);
        cached2.insert(c);
      }
      const double s = score_of(avail2, cached2);
      const double gain = s - current_score;
      if (gain <= 0) continue;
      const double gain_per_byte = gain / static_cast<double>(bytes);
      if (gain_per_byte > best_gain_per_byte) {
        best_gain_per_byte = gain_per_byte;
        best_score = s;
        best_group = needed;
      }
    }
    if (best_group.empty()) break;
    std::string names;
    size_t bytes = 0;
    for (size_t c : best_group) {
      available.insert(c);
      cached.insert(c);
      bytes += schema.column(c).ByteSize();
      if (!names.empty()) names += ", ";
      names += schema.column(c).name;
    }
    item_size += bytes;
    out.rationale.push_back("cache {" + names + "} (+" +
                            std::to_string(bytes) + " B, score " +
                            std::to_string(current_score) + " -> " +
                            std::to_string(best_score) + ")");
    current_score = best_score;
  }

  out.cached_columns.assign(cached.begin(), cached.end());
  std::sort(out.cached_columns.begin(), out.cached_columns.end());
  out.covered_frequency = CoveredFrequency(input.query_classes, available);
  out.score = current_score;
  out.item_size = item_size;
  if (out.rationale.empty()) {
    out.rationale.push_back(
        "no column improves coverage net of update churn; cache disabled");
  }
  return out;
}

}  // namespace nblb
