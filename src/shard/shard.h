// Shard: one slice of a sharded table — its own backing file, buffer pool,
// and primary index, sized so the per-shard index stays RAM-resident.
//
// This is the paper's §3.1 observation operationalized: "reducing the index
// size ... allows the entire index to fit in RAM". Each shard is a full
// vertical stack (Database → Table, optionally PartitionedTable for
// hot/cold), so N shards have N× the aggregate buffer capacity and each
// B+Tree is ~1/N the height of a monolithic one.
//
// Concurrency contract: a Shard is NOT thread safe. The ShardedEngine
// statically assigns every shard to exactly one worker thread, which is the
// only thread that ever executes operations on it — single-writer by
// construction, no per-operation locking. Only stats() may be read from
// other threads (the counters are atomics, see shard_stats.h).

#pragma once

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "exec/database.h"
#include "exec/table.h"
#include "partition/partitioned_table.h"
#include "shard/shard_stats.h"

namespace nblb {

/// \brief Per-shard configuration.
struct ShardOptions {
  /// Backing file for this shard's Database. With `truncate` (the default)
  /// Shard::Open removes and recreates this file — shards are (for now)
  /// rebuilt from a load phase, not reopened; give every engine a distinct
  /// path/prefix or prior data is destroyed. Durable reopen is a ROADMAP
  /// item.
  std::string path;
  /// When true, an existing file at `path` is removed and the shard is
  /// rebuilt from scratch (the load-phase model). When false, Open refuses
  /// to touch a path where a file already exists — durable reopen is not
  /// implemented yet, and the guard keeps an accidental reopen from
  /// silently destroying data.
  bool truncate = true;
  size_t page_size = kDefaultPageSize;
  /// Buffer pool capacity, per shard (the scale-out model: each shard is a
  /// "node" with its own fixed RAM budget).
  size_t buffer_pool_frames = 4096;
  /// Buffer pool stripes. A shard is single-worker by construction, so its
  /// pool sees one thread: default to ONE stripe, which gives the CLOCK
  /// sweep the whole capacity (striping a near-capacity working set costs
  /// hit rate to per-stripe imbalance and buys nothing without concurrent
  /// fetchers). Lock-free hits don't take the stripe mutex anyway.
  size_t buffer_pool_stripes = 1;
  /// O_DIRECT backing file: misses pay device latency, not page-cache cost.
  bool direct_io = false;
  /// Async miss-read engine (see storage/disk_manager.h): kAuto prefers
  /// io_uring, kThreads forces the preadv worker-pool fallback.
  IoBackend io_backend = IoBackend::kAuto;
  /// Max in-flight async ops for this shard's DiskManager (reads and
  /// writes share the budget).
  size_t io_queue_depth = 64;
  /// Worker threads for the preadv/pwritev fallback backend.
  size_t io_threads = 4;
  /// Background dirty-page flusher cadence (µs); 0 disables it and dirty
  /// write-back rides the evicting worker as before.
  uint64_t flusher_interval_us = 0;
  /// Max dirty pages per flusher pass.
  size_t flush_batch_pages = 64;
  /// Baseline knob: synchronous per-page write-back instead of the batched
  /// async pipeline (see DatabaseOptions::sync_writeback).
  bool sync_writeback = false;

  // ---- Adaptive batching (read by the ShardedEngine worker that owns this
  // shard; the shard itself just executes whatever it is handed) ----------

  /// Lower bound of the adaptive coalesce window: the minimum number of
  /// queued sub-batches a worker merges into one service group.
  size_t min_coalesce_window = 1;
  /// Upper bound of the adaptive coalesce window. The window doubles when
  /// the observed queue depth reaches it and halves when the queue runs
  /// near-empty (Nagle-style: batch for throughput under load, shrink
  /// toward latency when idle).
  size_t max_coalesce_window = 32;
  /// Drain deadline in microseconds: when the backlog is smaller than the
  /// current window, the owning worker may hold off up to this long for
  /// more sub-batches to arrive before serving. 0 (default) serves
  /// immediately — idle-regime latency is never taxed unless asked.
  uint32_t drain_deadline_us = 0;

  Schema schema;
  TableOptions table_options;
};

/// \brief One shard: a Database wrapping a single table with an int64
/// primary key, plus optional hot/cold partitioning.
class Shard {
 public:
  /// \brief Creates the shard's backing store. The schema must have a
  /// single-column int64-family primary key (it is the routing key).
  static Result<std::unique_ptr<Shard>> Open(uint32_t shard_id,
                                             ShardOptions options);

  ~Shard();
  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  // ---- Operations (single worker thread only) -----------------------------

  Status Insert(const Row& row);
  Result<Row> Get(uint64_t id);
  Result<Row> GetProjected(uint64_t id, const std::vector<size_t>& projection);

  /// \brief Batched full-row lookups: resolves all ids through the table's
  /// batch path (shared B+Tree descent, vectored/async heap-page miss I/O)
  /// and pushes one Result per id onto `out`, in input order. A hot/cold
  /// partitioned shard batches too: one hot-partition probe, then a single
  /// cold batch over the hot misses (PartitionedTable::GetBatchByKey).
  Status GetBatch(const std::vector<uint64_t>& ids,
                  std::vector<Result<Row>>* out);

  /// \brief Replaces the non-key columns of row `id` (Table::UpdateByKey:
  /// the cache invalidation predicate is logged before the heap write).
  Status Update(uint64_t id, const Row& row);

  /// \brief Deletes row `id` (index entry, heap tuple, cache predicate).
  Status Delete(uint64_t id);

  /// \brief Rebuilds this shard as hot/cold partitions (§3.1): rows whose
  /// encoded key is in `hot_encoded_keys` land in the hot partition, the
  /// rest in cold; subsequent lookups probe hot first. Must be called while
  /// no operations are executing on the shard.
  Status EnableHotCold(const std::unordered_set<std::string>& hot_encoded_keys);

  // ---- Introspection (any thread for stats; owner thread otherwise) -------

  uint32_t id() const { return id_; }
  const ShardOptions& options() const { return options_; }
  const ShardStats& stats() const { return stats_; }
  ShardStats& stats() { return stats_; }
  /// \brief Called by the owning worker after draining one batch fragment.
  void NoteSubBatch() { stats_.Add(stats_.sub_batches); }
  Database* database() { return db_.get(); }
  Table* table() { return table_; }
  /// nullptr unless EnableHotCold() ran.
  PartitionedTable* partitioned() { return partitioned_.get(); }
  uint64_t rows() const { return rows_; }

 private:
  Shard(uint32_t shard_id, ShardOptions options);

  std::vector<Value> KeyOf(uint64_t id) const;

  uint32_t id_;
  ShardOptions options_;
  /// Declared before db_ so it outlives it: the stats are registered in
  /// db_'s MetricsRegistry (Shard::Open), whose entries point in here.
  ShardStats stats_;
  std::unique_ptr<Database> db_;
  Table* table_ = nullptr;  // owned by db_
  std::unique_ptr<PartitionedTable> partitioned_;
  std::vector<size_t> all_columns_;  // identity projection for hot/cold gets
  uint64_t rows_ = 0;
};

}  // namespace nblb
