// Shard: one slice of a sharded table — its own backing file, buffer pool,
// and primary index, sized so the per-shard index stays RAM-resident.
//
// This is the paper's §3.1 observation operationalized: "reducing the index
// size ... allows the entire index to fit in RAM". Each shard is a full
// vertical stack (Database → Table, optionally PartitionedTable for
// hot/cold), so N shards have N× the aggregate buffer capacity and each
// B+Tree is ~1/N the height of a monolithic one.
//
// Concurrency contract: a Shard is NOT thread safe. The ShardedEngine
// statically assigns every shard to exactly one worker thread, which is the
// only thread that ever executes operations on it — single-writer by
// construction, no per-operation locking. Only stats() may be read from
// other threads (the counters are atomics, see shard_stats.h).

#pragma once

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "exec/database.h"
#include "exec/table.h"
#include "partition/partitioned_table.h"
#include "shard/shard_stats.h"
#include "storage/superblock.h"
#include "storage/wal.h"

namespace nblb {

/// \brief Per-shard configuration.
struct ShardOptions {
  /// Backing file for this shard's Database. With `truncate` (the default)
  /// Shard::Open removes and recreates this file (plus the `.sb`/`.wal`
  /// sidecars) — the load-phase model; give every engine a distinct
  /// path/prefix or prior data is destroyed.
  std::string path;
  /// When true, an existing file at `path` is removed and the shard is
  /// rebuilt from scratch (the load-phase model). When false AND
  /// wal_enabled, Open reattaches to the existing files: a valid
  /// superblock selects clean reattach or crash recovery (heap walk +
  /// index rebuild + WAL replay). Without wal_enabled, Open still refuses
  /// to touch an existing file — there is no catalog to reopen from, and
  /// the guard keeps an accidental reopen from silently destroying data.
  bool truncate = true;
  /// Durability layer: superblock sidecar + per-shard write-ahead log.
  /// Every write op appends a logical record; records become durable in
  /// groups via CommitWal() (the ShardedEngine commits once per service
  /// group, before acking the group's tickets). Checkpoints advance the
  /// recovery LSN and reclaim log space. Not supported together with
  /// EnableHotCold.
  bool wal_enabled = false;
  /// Semantic-ID codec configuration persisted in the superblock (0 =
  /// unused): a reopened shard can rebuild its EmbeddedRouter without
  /// out-of-band config.
  uint32_t semid_partition_bits = 0;
  size_t page_size = kDefaultPageSize;
  /// Buffer pool capacity, per shard (the scale-out model: each shard is a
  /// "node" with its own fixed RAM budget).
  size_t buffer_pool_frames = 4096;
  /// Buffer pool stripes. A shard is single-worker by construction, so its
  /// pool sees one thread: default to ONE stripe, which gives the CLOCK
  /// sweep the whole capacity (striping a near-capacity working set costs
  /// hit rate to per-stripe imbalance and buys nothing without concurrent
  /// fetchers). Lock-free hits don't take the stripe mutex anyway.
  size_t buffer_pool_stripes = 1;
  /// O_DIRECT backing file: misses pay device latency, not page-cache cost.
  bool direct_io = false;
  /// Async miss-read engine (see storage/disk_manager.h): kAuto prefers
  /// io_uring, kThreads forces the preadv worker-pool fallback.
  IoBackend io_backend = IoBackend::kAuto;
  /// Max in-flight async ops for this shard's DiskManager (reads and
  /// writes share the budget).
  size_t io_queue_depth = 64;
  /// Worker threads for the preadv/pwritev fallback backend.
  size_t io_threads = 4;
  /// Background dirty-page flusher cadence (µs); 0 disables it and dirty
  /// write-back rides the evicting worker as before.
  uint64_t flusher_interval_us = 0;
  /// Max dirty pages per flusher pass.
  size_t flush_batch_pages = 64;
  /// Baseline knob: synchronous per-page write-back instead of the batched
  /// async pipeline (see DatabaseOptions::sync_writeback).
  bool sync_writeback = false;

  // ---- Adaptive batching (read by the ShardedEngine worker that owns this
  // shard; the shard itself just executes whatever it is handed) ----------

  /// Lower bound of the adaptive coalesce window: the minimum number of
  /// queued sub-batches a worker merges into one service group.
  size_t min_coalesce_window = 1;
  /// Upper bound of the adaptive coalesce window. The window doubles when
  /// the observed queue depth reaches it and halves when the queue runs
  /// near-empty (Nagle-style: batch for throughput under load, shrink
  /// toward latency when idle).
  size_t max_coalesce_window = 32;
  /// Drain deadline in microseconds: when the backlog is smaller than the
  /// current window, the owning worker may hold off up to this long for
  /// more sub-batches to arrive before serving. 0 (default) serves
  /// immediately — idle-regime latency is never taxed unless asked.
  uint32_t drain_deadline_us = 0;

  Schema schema;
  TableOptions table_options;
};

/// \brief One shard: a Database wrapping a single table with an int64
/// primary key, plus optional hot/cold partitioning.
class Shard {
 public:
  /// \brief Creates the shard's backing store. The schema must have a
  /// single-column int64-family primary key (it is the routing key).
  static Result<std::unique_ptr<Shard>> Open(uint32_t shard_id,
                                             ShardOptions options);

  ~Shard();
  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  // ---- Operations (single worker thread only) -----------------------------

  Status Insert(const Row& row);
  Result<Row> Get(uint64_t id);
  Result<Row> GetProjected(uint64_t id, const std::vector<size_t>& projection);

  /// \brief Batched full-row lookups: resolves all ids through the table's
  /// batch path (shared B+Tree descent, vectored/async heap-page miss I/O)
  /// and pushes one Result per id onto `out`, in input order. A hot/cold
  /// partitioned shard batches too: one hot-partition probe, then a single
  /// cold batch over the hot misses (PartitionedTable::GetBatchByKey).
  Status GetBatch(const std::vector<uint64_t>& ids,
                  std::vector<Result<Row>>* out);

  /// \brief Replaces the non-key columns of row `id` (Table::UpdateByKey:
  /// the cache invalidation predicate is logged before the heap write).
  Status Update(uint64_t id, const Row& row);

  /// \brief Deletes row `id` (index entry, heap tuple, cache predicate).
  Status Delete(uint64_t id);

  /// \brief Group commit: makes every WAL record appended since the last
  /// commit durable (one vectored write + one fsync). The ShardedEngine
  /// calls this once per service group, after serving the group's ops and
  /// before completing their tickets — that is the ack barrier. No-op
  /// without wal_enabled. A failure is sticky (see Wal) and must fail the
  /// group's write ops.
  Status CommitWal();

  /// \brief Durable checkpoint: commits pending WAL records, persists
  /// index metadata, flushes all dirty pages, fsyncs, publishes a new
  /// superblock version (advancing the recovery LSN), and resets the WAL
  /// to reclaim log space. Without wal_enabled this is just
  /// Database::Checkpoint. Owner thread only.
  Status Checkpoint();

  /// \brief Test hook: skip the clean close (checkpoint + clean-shutdown
  /// superblock) in the destructor, so the next Open exercises the crash
  /// recovery path even though the process exits normally.
  void SimulateCrashForTest() { skip_clean_close_ = true; }

  /// \brief Rebuilds this shard as hot/cold partitions (§3.1): rows whose
  /// encoded key is in `hot_encoded_keys` land in the hot partition, the
  /// rest in cold; subsequent lookups probe hot first. Must be called while
  /// no operations are executing on the shard.
  Status EnableHotCold(const std::unordered_set<std::string>& hot_encoded_keys);

  // ---- Introspection (any thread for stats; owner thread otherwise) -------

  uint32_t id() const { return id_; }
  const ShardOptions& options() const { return options_; }
  const ShardStats& stats() const { return stats_; }
  ShardStats& stats() { return stats_; }
  /// \brief Called by the owning worker after draining one batch fragment.
  void NoteSubBatch() { stats_.Add(stats_.sub_batches); }
  Database* database() { return db_.get(); }
  Table* table() { return table_; }
  /// nullptr unless EnableHotCold() ran.
  PartitionedTable* partitioned() { return partitioned_.get(); }
  uint64_t rows() const { return rows_; }
  /// nullptr unless wal_enabled.
  Wal* wal() { return wal_.get(); }
  /// \brief True when this Open took the crash-recovery path (no clean
  /// shutdown recorded: heap walk + index rebuild + WAL replay).
  bool recovered() const { return recovered_; }
  /// \brief WAL records re-applied during recovery (0 on clean reattach).
  uint64_t replayed_records() const { return replayed_records_; }

 private:
  Shard(uint32_t shard_id, ShardOptions options);

  std::vector<Value> KeyOf(uint64_t id) const;

  /// Wires the WAL-commit/superblock-publish hooks into db_->Checkpoint().
  void InstallCheckpointHooks();
  /// Re-applies WAL records with lsn > checkpoint_lsn_ through UpsertByKey /
  /// DeleteByKey (idempotent logical redo).
  Status ReplayWal();
  /// Snapshot of everything the next Open needs, from live structures.
  SuperblockData BuildSuperblock() const;
  /// Appends one logical record for an acked-on-commit write op.
  Status LogPut(uint64_t id, const Row& row);
  Status LogDelete(uint64_t id);

  uint32_t id_;
  ShardOptions options_;
  /// Declared before db_ so it outlives it: the stats are registered in
  /// db_'s MetricsRegistry (Shard::Open), whose entries point in here.
  ShardStats stats_;
  std::unique_ptr<Database> db_;
  Table* table_ = nullptr;  // owned by db_
  std::unique_ptr<PartitionedTable> partitioned_;
  std::vector<size_t> all_columns_;  // identity projection for hot/cold gets
  uint64_t rows_ = 0;

  // ---- Durability (all owner-thread only) ---------------------------------
  /// Owns its own DiskManager over the `.wal` sidecar, independent of db_.
  /// The checkpoint hooks installed on db_ capture `this` and use wal_, so
  /// ~Shard runs the clean close and detaches the hooks before db_ dies.
  std::unique_ptr<Wal> wal_;
  uint64_t sb_version_ = 0;           ///< last published superblock version
  uint64_t checkpoint_lsn_ = 0;       ///< recovery LSN of that superblock
  uint64_t pending_checkpoint_lsn_ = 0;  ///< staged by pre-hook for post-hook
  bool durable_ = false;              ///< options_.wal_enabled, cached
  bool skip_clean_close_ = false;     ///< SimulateCrashForTest()
  bool clean_next_publish_ = false;   ///< next superblock says clean_shutdown
  bool recovered_ = false;
  uint64_t replayed_records_ = 0;
};

}  // namespace nblb
