// Per-shard operation counters, safe to read while a worker is serving.
//
// Counters use memory_order_relaxed throughout: each one is an independent
// monotonic event count, never used to publish other memory, so there is no
// acquire/release pairing to preserve — relaxed keeps the serving path at a
// plain atomic add. A Snapshot() taken while workers run is a consistent
// per-counter view but may straddle an in-flight operation; totals are exact
// once the engine's workers are quiesced (thread join synchronizes-with all
// their prior writes).
//
// The log-bucket histograms (queue depth, coalesced group size, sub-batch
// latency) live in obs/histogram.h and follow the same discipline: each
// bucket is an independent relaxed counter, so recording a sample is one
// atomic add and snapshots are cheap. RegisterMetrics() publishes every
// counter and histogram into the unified MetricsRegistry (see src/obs/).

#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "obs/histogram.h"
#include "obs/metrics.h"

namespace nblb {

/// \brief Plain-value copy of ShardStats, safe to aggregate and compare.
struct ShardStatsSnapshot {
  uint64_t gets = 0;
  uint64_t projected_gets = 0;
  uint64_t inserts = 0;
  uint64_t updates = 0;
  uint64_t deletes = 0;
  uint64_t not_found = 0;
  uint64_t errors = 0;        ///< non-NotFound failures
  uint64_t sub_batches = 0;   ///< per-shard batch fragments executed
  uint64_t batch_gets = 0;    ///< gets served through the batched read path
  uint64_t coalesced_groups = 0;  ///< service groups (>= 1 sub-batch each)

  /// Shard-queue depth observed at each service-group pop.
  LogHistogramSnapshot queue_depth;
  /// Sub-batches coalesced into each service group.
  LogHistogramSnapshot coalesced;
  /// Per-sub-batch latency, enqueue to results written, in microseconds.
  LogHistogramSnapshot sub_batch_latency_us;

  uint64_t ops() const {
    return gets + projected_gets + inserts + updates + deletes;
  }

  ShardStatsSnapshot& operator+=(const ShardStatsSnapshot& o) {
    gets += o.gets;
    projected_gets += o.projected_gets;
    inserts += o.inserts;
    updates += o.updates;
    deletes += o.deletes;
    not_found += o.not_found;
    errors += o.errors;
    sub_batches += o.sub_batches;
    batch_gets += o.batch_gets;
    coalesced_groups += o.coalesced_groups;
    queue_depth += o.queue_depth;
    coalesced += o.coalesced;
    sub_batch_latency_us += o.sub_batch_latency_us;
    return *this;
  }

  /// \brief Subtracts an earlier snapshot (all counters are monotonic), so a
  /// measurement phase can be isolated: after -= before.
  ShardStatsSnapshot& operator-=(const ShardStatsSnapshot& o) {
    gets -= o.gets;
    projected_gets -= o.projected_gets;
    inserts -= o.inserts;
    updates -= o.updates;
    deletes -= o.deletes;
    not_found -= o.not_found;
    errors -= o.errors;
    sub_batches -= o.sub_batches;
    batch_gets -= o.batch_gets;
    coalesced_groups -= o.coalesced_groups;
    queue_depth -= o.queue_depth;
    coalesced -= o.coalesced;
    sub_batch_latency_us -= o.sub_batch_latency_us;
    return *this;
  }
};

/// \brief Live counters, written by the shard's owning worker thread and
/// readable from any thread.
struct ShardStats {
  std::atomic<uint64_t> gets{0};
  std::atomic<uint64_t> projected_gets{0};
  std::atomic<uint64_t> inserts{0};
  std::atomic<uint64_t> updates{0};
  std::atomic<uint64_t> deletes{0};
  std::atomic<uint64_t> not_found{0};
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> sub_batches{0};
  std::atomic<uint64_t> batch_gets{0};
  std::atomic<uint64_t> coalesced_groups{0};

  LogHistogram queue_depth;
  LogHistogram coalesced;
  LogHistogram sub_batch_latency_us;

  void Add(std::atomic<uint64_t>& c, uint64_t n = 1) {
    c.fetch_add(n, std::memory_order_relaxed);
  }

  /// \brief Publishes every counter/histogram under `prefix` (e.g.
  /// "shard."). The registry must not outlive this object.
  void RegisterMetrics(MetricsRegistry* registry,
                       const std::string& prefix) const {
    registry->RegisterCounter(prefix + "gets", &gets);
    registry->RegisterCounter(prefix + "projected_gets", &projected_gets);
    registry->RegisterCounter(prefix + "inserts", &inserts);
    registry->RegisterCounter(prefix + "updates", &updates);
    registry->RegisterCounter(prefix + "deletes", &deletes);
    registry->RegisterCounter(prefix + "not_found", &not_found);
    registry->RegisterCounter(prefix + "errors", &errors);
    registry->RegisterCounter(prefix + "sub_batches", &sub_batches);
    registry->RegisterCounter(prefix + "batch_gets", &batch_gets);
    registry->RegisterCounter(prefix + "coalesced_groups", &coalesced_groups);
    registry->RegisterHistogram(prefix + "queue_depth", &queue_depth);
    registry->RegisterHistogram(prefix + "coalesced", &coalesced);
    registry->RegisterHistogram(prefix + "sub_batch_latency_us",
                                &sub_batch_latency_us);
  }

  ShardStatsSnapshot Snapshot() const {
    ShardStatsSnapshot s;
    s.gets = gets.load(std::memory_order_relaxed);
    s.projected_gets = projected_gets.load(std::memory_order_relaxed);
    s.inserts = inserts.load(std::memory_order_relaxed);
    s.updates = updates.load(std::memory_order_relaxed);
    s.deletes = deletes.load(std::memory_order_relaxed);
    s.not_found = not_found.load(std::memory_order_relaxed);
    s.errors = errors.load(std::memory_order_relaxed);
    s.sub_batches = sub_batches.load(std::memory_order_relaxed);
    s.batch_gets = batch_gets.load(std::memory_order_relaxed);
    s.coalesced_groups = coalesced_groups.load(std::memory_order_relaxed);
    s.queue_depth = queue_depth.Snapshot();
    s.coalesced = coalesced.Snapshot();
    s.sub_batch_latency_us = sub_batch_latency_us.Snapshot();
    return s;
  }
};

}  // namespace nblb
