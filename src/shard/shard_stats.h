// Per-shard operation counters, safe to read while a worker is serving.
//
// Counters use memory_order_relaxed throughout: each one is an independent
// monotonic event count, never used to publish other memory, so there is no
// acquire/release pairing to preserve — relaxed keeps the serving path at a
// plain atomic add. A Snapshot() taken while workers run is a consistent
// per-counter view but may straddle an in-flight operation; totals are exact
// once the engine's workers are quiesced (thread join synchronizes-with all
// their prior writes).
//
// The log-bucket histograms (queue depth, coalesced group size, sub-batch
// latency) follow the same discipline: each bucket is an independent relaxed
// counter, so recording a sample is one atomic add and snapshots are cheap.

#pragma once

#include <array>
#include <atomic>
#include <cstdint>

namespace nblb {

/// Number of power-of-two buckets in a LogHistogram. Bucket 0 holds the
/// value 0; bucket i (i >= 1) holds values in [2^(i-1), 2^i - 1]. 26 buckets
/// cover values up to ~33M — queue depths, coalesce counts, and microsecond
/// latencies up to ~33 s.
constexpr size_t kStatsLogBuckets = 26;

/// \brief Bucket index for `v` (see kStatsLogBuckets).
inline size_t StatsLogBucketOf(uint64_t v) {
  size_t b = 0;
  while (v > 0 && b + 1 < kStatsLogBuckets) {
    v >>= 1;
    ++b;
  }
  return b;
}

/// \brief Plain-value copy of a LogHistogram; aggregatable and diffable
/// (counters are monotonic, so subtracting an earlier snapshot isolates a
/// measurement phase).
struct LogHistogramSnapshot {
  std::array<uint64_t, kStatsLogBuckets> buckets{};

  uint64_t count() const {
    uint64_t n = 0;
    for (uint64_t b : buckets) n += b;
    return n;
  }

  /// \brief Samples whose bucket lower bound is >= `threshold` — i.e. a
  /// conservative count of samples known to be at least `threshold`.
  uint64_t CountAtLeast(uint64_t threshold) const {
    if (threshold == 0) return count();  // every sample is >= 0
    uint64_t n = 0;
    for (size_t i = 1; i < kStatsLogBuckets; ++i) {
      if ((uint64_t{1} << (i - 1)) >= threshold) n += buckets[i];
    }
    return n;
  }

  /// \brief Upper bound of the bucket holding percentile `p` in [0, 1].
  uint64_t ApproxPercentile(double p) const {
    const uint64_t total = count();
    if (total == 0) return 0;
    uint64_t target = static_cast<uint64_t>(p * static_cast<double>(total));
    if (target >= total) target = total - 1;
    uint64_t seen = 0;
    for (size_t i = 0; i < kStatsLogBuckets; ++i) {
      seen += buckets[i];
      if (seen > target) return UpperBound(i);
    }
    return UpperBound(kStatsLogBuckets - 1);
  }

  /// \brief Upper bound of the highest non-empty bucket (0 if empty).
  uint64_t ApproxMax() const {
    for (size_t i = kStatsLogBuckets; i-- > 0;) {
      if (buckets[i] > 0) return UpperBound(i);
    }
    return 0;
  }

  LogHistogramSnapshot& operator+=(const LogHistogramSnapshot& o) {
    for (size_t i = 0; i < kStatsLogBuckets; ++i) buckets[i] += o.buckets[i];
    return *this;
  }

  LogHistogramSnapshot& operator-=(const LogHistogramSnapshot& o) {
    for (size_t i = 0; i < kStatsLogBuckets; ++i) buckets[i] -= o.buckets[i];
    return *this;
  }

  static uint64_t UpperBound(size_t bucket) {
    return bucket == 0 ? 0 : (uint64_t{1} << bucket) - 1;
  }
};

/// \brief Live power-of-two-bucket histogram; one relaxed atomic add per
/// recorded sample.
struct LogHistogram {
  std::array<std::atomic<uint64_t>, kStatsLogBuckets> buckets{};

  void Record(uint64_t v) {
    buckets[StatsLogBucketOf(v)].fetch_add(1, std::memory_order_relaxed);
  }

  LogHistogramSnapshot Snapshot() const {
    LogHistogramSnapshot s;
    for (size_t i = 0; i < kStatsLogBuckets; ++i) {
      s.buckets[i] = buckets[i].load(std::memory_order_relaxed);
    }
    return s;
  }
};

/// \brief Plain-value copy of ShardStats, safe to aggregate and compare.
struct ShardStatsSnapshot {
  uint64_t gets = 0;
  uint64_t projected_gets = 0;
  uint64_t inserts = 0;
  uint64_t updates = 0;
  uint64_t deletes = 0;
  uint64_t not_found = 0;
  uint64_t errors = 0;        ///< non-NotFound failures
  uint64_t sub_batches = 0;   ///< per-shard batch fragments executed
  uint64_t batch_gets = 0;    ///< gets served through the batched read path
  uint64_t coalesced_groups = 0;  ///< service groups (>= 1 sub-batch each)

  /// Shard-queue depth observed at each service-group pop.
  LogHistogramSnapshot queue_depth;
  /// Sub-batches coalesced into each service group.
  LogHistogramSnapshot coalesced;
  /// Per-sub-batch latency, enqueue to results written, in microseconds.
  LogHistogramSnapshot sub_batch_latency_us;

  uint64_t ops() const {
    return gets + projected_gets + inserts + updates + deletes;
  }

  ShardStatsSnapshot& operator+=(const ShardStatsSnapshot& o) {
    gets += o.gets;
    projected_gets += o.projected_gets;
    inserts += o.inserts;
    updates += o.updates;
    deletes += o.deletes;
    not_found += o.not_found;
    errors += o.errors;
    sub_batches += o.sub_batches;
    batch_gets += o.batch_gets;
    coalesced_groups += o.coalesced_groups;
    queue_depth += o.queue_depth;
    coalesced += o.coalesced;
    sub_batch_latency_us += o.sub_batch_latency_us;
    return *this;
  }

  /// \brief Subtracts an earlier snapshot (all counters are monotonic), so a
  /// measurement phase can be isolated: after -= before.
  ShardStatsSnapshot& operator-=(const ShardStatsSnapshot& o) {
    gets -= o.gets;
    projected_gets -= o.projected_gets;
    inserts -= o.inserts;
    updates -= o.updates;
    deletes -= o.deletes;
    not_found -= o.not_found;
    errors -= o.errors;
    sub_batches -= o.sub_batches;
    batch_gets -= o.batch_gets;
    coalesced_groups -= o.coalesced_groups;
    queue_depth -= o.queue_depth;
    coalesced -= o.coalesced;
    sub_batch_latency_us -= o.sub_batch_latency_us;
    return *this;
  }
};

/// \brief Live counters, written by the shard's owning worker thread and
/// readable from any thread.
struct ShardStats {
  std::atomic<uint64_t> gets{0};
  std::atomic<uint64_t> projected_gets{0};
  std::atomic<uint64_t> inserts{0};
  std::atomic<uint64_t> updates{0};
  std::atomic<uint64_t> deletes{0};
  std::atomic<uint64_t> not_found{0};
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> sub_batches{0};
  std::atomic<uint64_t> batch_gets{0};
  std::atomic<uint64_t> coalesced_groups{0};

  LogHistogram queue_depth;
  LogHistogram coalesced;
  LogHistogram sub_batch_latency_us;

  void Add(std::atomic<uint64_t>& c, uint64_t n = 1) {
    c.fetch_add(n, std::memory_order_relaxed);
  }

  ShardStatsSnapshot Snapshot() const {
    ShardStatsSnapshot s;
    s.gets = gets.load(std::memory_order_relaxed);
    s.projected_gets = projected_gets.load(std::memory_order_relaxed);
    s.inserts = inserts.load(std::memory_order_relaxed);
    s.updates = updates.load(std::memory_order_relaxed);
    s.deletes = deletes.load(std::memory_order_relaxed);
    s.not_found = not_found.load(std::memory_order_relaxed);
    s.errors = errors.load(std::memory_order_relaxed);
    s.sub_batches = sub_batches.load(std::memory_order_relaxed);
    s.batch_gets = batch_gets.load(std::memory_order_relaxed);
    s.coalesced_groups = coalesced_groups.load(std::memory_order_relaxed);
    s.queue_depth = queue_depth.Snapshot();
    s.coalesced = coalesced.Snapshot();
    s.sub_batch_latency_us = sub_batch_latency_us.Snapshot();
    return s;
  }
};

}  // namespace nblb
