// Per-shard operation counters, safe to read while a worker is serving.
//
// Counters use memory_order_relaxed throughout: each one is an independent
// monotonic event count, never used to publish other memory, so there is no
// acquire/release pairing to preserve — relaxed keeps the serving path at a
// plain atomic add. A Snapshot() taken while workers run is a consistent
// per-counter view but may straddle an in-flight operation; totals are exact
// once the engine's workers are quiesced (thread join synchronizes-with all
// their prior writes).

#pragma once

#include <atomic>
#include <cstdint>

namespace nblb {

/// \brief Plain-value copy of ShardStats, safe to aggregate and compare.
struct ShardStatsSnapshot {
  uint64_t gets = 0;
  uint64_t projected_gets = 0;
  uint64_t inserts = 0;
  uint64_t updates = 0;
  uint64_t deletes = 0;
  uint64_t not_found = 0;
  uint64_t errors = 0;        ///< non-NotFound failures
  uint64_t sub_batches = 0;   ///< per-shard batch fragments executed
  uint64_t batch_gets = 0;    ///< gets served through the batched read path

  uint64_t ops() const {
    return gets + projected_gets + inserts + updates + deletes;
  }

  ShardStatsSnapshot& operator+=(const ShardStatsSnapshot& o) {
    gets += o.gets;
    projected_gets += o.projected_gets;
    inserts += o.inserts;
    updates += o.updates;
    deletes += o.deletes;
    not_found += o.not_found;
    errors += o.errors;
    sub_batches += o.sub_batches;
    batch_gets += o.batch_gets;
    return *this;
  }
};

/// \brief Live counters, written by the shard's owning worker thread and
/// readable from any thread.
struct ShardStats {
  std::atomic<uint64_t> gets{0};
  std::atomic<uint64_t> projected_gets{0};
  std::atomic<uint64_t> inserts{0};
  std::atomic<uint64_t> updates{0};
  std::atomic<uint64_t> deletes{0};
  std::atomic<uint64_t> not_found{0};
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> sub_batches{0};
  std::atomic<uint64_t> batch_gets{0};

  void Add(std::atomic<uint64_t>& c, uint64_t n = 1) {
    c.fetch_add(n, std::memory_order_relaxed);
  }

  ShardStatsSnapshot Snapshot() const {
    ShardStatsSnapshot s;
    s.gets = gets.load(std::memory_order_relaxed);
    s.projected_gets = projected_gets.load(std::memory_order_relaxed);
    s.inserts = inserts.load(std::memory_order_relaxed);
    s.updates = updates.load(std::memory_order_relaxed);
    s.deletes = deletes.load(std::memory_order_relaxed);
    s.not_found = not_found.load(std::memory_order_relaxed);
    s.errors = errors.load(std::memory_order_relaxed);
    s.sub_batches = sub_batches.load(std::memory_order_relaxed);
    s.batch_gets = batch_gets.load(std::memory_order_relaxed);
    return s;
  }
};

}  // namespace nblb
