#include "shard/shard.h"

#include <cstdio>
#include <filesystem>
#include <system_error>
#include <utility>

#include "catalog/type.h"
#include "common/logging.h"
#include "obs/event_ring.h"
#include "obs/trace.h"

namespace nblb {

namespace {

/// Checks a superblock against the options of the shard being opened. The
/// superblock never overrides caller options — the caller's schema already
/// passed key validation and drives codec construction, so a mismatch is an
/// operator error (wrong path or changed config), not something to adopt.
Status ValidateSuperblock(const SuperblockData& sb, const ShardOptions& opt) {
  if (sb.page_size != opt.page_size) {
    return Status::InvalidArgument("superblock page_size mismatch");
  }
  if (sb.semid_partition_bits != opt.semid_partition_bits) {
    return Status::InvalidArgument("superblock semid_partition_bits mismatch");
  }
  if (sb.reuse_free_slots != opt.table_options.reuse_free_slots ||
      sb.enable_index_cache != opt.table_options.enable_index_cache) {
    return Status::InvalidArgument("superblock table-option flags mismatch");
  }
  const auto match_cols = [](const std::vector<uint32_t>& a,
                             const std::vector<size_t>& b) {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i] != b[i]) return false;
    }
    return true;
  };
  if (!match_cols(sb.key_columns, opt.table_options.key_columns) ||
      !match_cols(sb.cached_columns, opt.table_options.cached_columns)) {
    return Status::InvalidArgument("superblock key/cached columns mismatch");
  }
  const auto& cols = opt.schema.columns();
  if (sb.columns.size() != cols.size()) {
    return Status::InvalidArgument("superblock schema arity mismatch");
  }
  for (size_t i = 0; i < cols.size(); ++i) {
    if (sb.columns[i].name != cols[i].name ||
        sb.columns[i].type != cols[i].type ||
        sb.columns[i].length != cols[i].length) {
      return Status::InvalidArgument("superblock schema column mismatch: " +
                                     cols[i].name);
    }
  }
  if (sb.heap_first_page == kInvalidPageId ||
      sb.btree_meta_page == kInvalidPageId) {
    return Status::Corruption("superblock has no table roots");
  }
  return Status::OK();
}

}  // namespace

Shard::Shard(uint32_t shard_id, ShardOptions options)
    : id_(shard_id), options_(std::move(options)) {}

Shard::~Shard() {
  if (durable_ && !skip_clean_close_ && db_ && table_ && !partitioned_) {
    // Orderly close: publish a clean-shutdown superblock so the next Open
    // takes the fast attach path (strict heap walk + BTree::Open) instead
    // of crash recovery. Best effort — a failure here just means the next
    // open recovers as if we had crashed, which is always safe.
    clean_next_publish_ = true;
    Status s = db_->Checkpoint();
    clean_next_publish_ = false;
    if (!s.ok()) {
      std::fprintf(stderr,
                   "nblb: shard %u clean-close checkpoint failed (%s); next "
                   "open will run crash recovery\n",
                   id_, s.ToString().c_str());
    }
  }
  // The hooks capture `this`; detach before members die.
  if (db_) db_->SetCheckpointExtension(nullptr, nullptr);
}

Result<std::unique_ptr<Shard>> Shard::Open(uint32_t shard_id,
                                           ShardOptions options) {
  if (options.table_options.key_columns.size() != 1) {
    return Status::InvalidArgument(
        "shard tables need a single-column primary key (the routing key)");
  }
  const size_t key_col = options.table_options.key_columns[0];
  if (key_col >= options.schema.num_columns() ||
      !IsIntegerFamily(options.schema.column(key_col).type)) {
    return Status::InvalidArgument(
        "shard routing key must be an integer-family column");
  }
  // Normalize the coalescing knobs here, where they live — the engine's
  // worker reads them back through options(), and a direct Shard::Open
  // must uphold the same invariants the engine validates.
  if (options.min_coalesce_window == 0) options.min_coalesce_window = 1;
  if (options.max_coalesce_window < options.min_coalesce_window) {
    return Status::InvalidArgument(
        "max_coalesce_window must be >= min_coalesce_window");
  }

  std::unique_ptr<Shard> shard(new Shard(shard_id, std::move(options)));

  DatabaseOptions dbo;
  dbo.path = shard->options_.path;
  dbo.page_size = shard->options_.page_size;
  dbo.buffer_pool_frames = shard->options_.buffer_pool_frames;
  dbo.buffer_pool_stripes = shard->options_.buffer_pool_stripes;
  dbo.direct_io = shard->options_.direct_io;
  dbo.io_backend = shard->options_.io_backend;
  dbo.io_queue_depth = shard->options_.io_queue_depth;
  dbo.io_threads = shard->options_.io_threads;
  dbo.flusher_interval_us = shard->options_.flusher_interval_us;
  dbo.flush_batch_pages = shard->options_.flush_batch_pages;
  dbo.sync_writeback = shard->options_.sync_writeback;
  shard->durable_ = shard->options_.wal_enabled;

  // Decide between fresh create and reattach BEFORE opening anything.
  bool attach = false;
  SuperblockData sb;
  if (shard->options_.truncate) {
    std::remove(dbo.path.c_str());
    std::remove(Superblock::PathFor(dbo.path).c_str());
    std::remove(Wal::PathFor(dbo.path).c_str());
  } else {
    std::error_code ec;
    const bool exists = std::filesystem::exists(dbo.path, ec);
    if (ec) {
      // Can't prove the path is clear — refuse rather than risk the
      // downstream O_CREAT (no O_EXCL) silently clobbering a file the
      // guard exists to protect.
      return Status::IOError("cannot probe shard path (" + ec.message() +
                             "); refusing guarded open: " + dbo.path);
    }
    if (shard->durable_) {
      auto read = Superblock::Read(Superblock::PathFor(dbo.path));
      if (read.ok()) {
        if (!exists) {
          return Status::Corruption(
              "superblock exists but the data file is missing: " + dbo.path);
        }
        sb = std::move(read).ValueOrDie();
        NBLB_RETURN_NOT_OK(ValidateSuperblock(sb, shard->options_));
        attach = true;
      } else if (read.status().IsNotFound()) {
        if (exists) {
          // A data file with no superblock was written by a non-durable
          // shard (or isn't ours at all) — there is no catalog to reopen
          // from, so the clobber guard applies.
          return Status::AlreadyExists(
              "shard backing file exists without a superblock; pass "
              "truncate=true to rebuild: " +
              dbo.path);
        }
        // Nothing on disk: fresh create.
      } else {
        return read.status();  // corrupt superblock: refuse, don't clobber
      }
    } else if (exists) {
      // Without the WAL there is no durable catalog, so "opening" an
      // existing file would really mean silently clobbering it. Refuse
      // instead of destroying data.
      return Status::AlreadyExists(
          "shard backing file exists and truncate=false; reopen requires "
          "wal_enabled — pass truncate=true to rebuild: " +
          dbo.path);
    }
  }

  NBLB_ASSIGN_OR_RETURN(shard->db_, Database::Open(dbo));
  // The shard's op counters join the database's registry, so one
  // Database::DumpMetrics() covers disk + buffer pool + shard in a single
  // document. stats_ outlives db_ (member order), so the pointers stay
  // valid for the registry's whole life.
  shard->stats_.RegisterMetrics(shard->db_->metrics(), "shard.");

  if (shard->durable_) {
    WalOptions wo;
    wo.page_size = shard->options_.page_size;
    wo.io_backend = shard->options_.io_backend;
    NBLB_ASSIGN_OR_RETURN(shard->wal_,
                          Wal::Open(Wal::PathFor(dbo.path), wo));
    shard->wal_->RegisterMetrics(shard->db_->metrics(), "wal.");
  }

  if (!attach) {
    NBLB_ASSIGN_OR_RETURN(
        shard->table_,
        shard->db_->CreateTable("data", shard->options_.schema,
                                shard->options_.table_options));
  } else {
    shard->sb_version_ = sb.version;
    shard->checkpoint_lsn_ = sb.checkpoint_lsn;
    if (sb.clean_shutdown) {
      NBLB_ASSIGN_OR_RETURN(
          shard->table_,
          shard->db_->AttachTable("data", shard->options_.schema,
                                  shard->options_.table_options,
                                  sb.heap_first_page, sb.btree_meta_page));
    } else {
      // Crash recovery: the on-disk index is untrusted (the flusher
      // persists arbitrary page subsets), so rebuild it from the heap,
      // then redo the WAL tail.
      RecordFlightEvent(FlightEvent::kRecoveryStart, shard_id,
                        sb.checkpoint_lsn);
      shard->recovered_ = true;
      NBLB_ASSIGN_OR_RETURN(
          shard->table_,
          shard->db_->AttachTableRebuild("data", shard->options_.schema,
                                         shard->options_.table_options,
                                         sb.heap_first_page));
    }
    NBLB_RETURN_NOT_OK(shard->ReplayWal());
    shard->rows_ = shard->table_->heap()->tuple_count();
    RecordFlightEvent(FlightEvent::kRecoveryReplayed,
                      shard->replayed_records_, shard->rows_);
  }

  shard->all_columns_.resize(shard->options_.schema.num_columns());
  for (size_t i = 0; i < shard->all_columns_.size(); ++i) {
    shard->all_columns_[i] = i;
  }

  if (shard->durable_) {
    shard->InstallCheckpointHooks();
    // Baseline publish: makes the just-created (or just-recovered) state
    // durable, marks the shard dirty (clean_shutdown=false) so a crash
    // from here on is detected, and resets the WAL after recovery replay.
    NBLB_RETURN_NOT_OK(shard->db_->Checkpoint());
  }
  return shard;
}

Status Shard::CommitWal() {
  if (!wal_) return Status::OK();
  Status s = wal_->Commit();
  if (!s.ok()) stats_.Add(stats_.errors);
  return s;
}

Status Shard::Checkpoint() { return db_->Checkpoint(); }

void Shard::InstallCheckpointHooks() {
  db_->SetCheckpointExtension(
      // Pre-flush: everything the superblock will reference must be durable
      // or about to be flushed. Commit pending WAL records (so no acked
      // write can be lost by the Reset below), stage the LSN the publish
      // covers, and persist the index's root/meta linkage.
      [this]() -> Status {
        if (partitioned_) {
          return Status::NotSupported(
              "checkpoint on a hot/cold-partitioned shard");
        }
        NBLB_RETURN_NOT_OK(wal_->Commit());
        pending_checkpoint_lsn_ = wal_->next_lsn() - 1;
        return table_->index()->WriteMeta();
      },
      // Post-fsync: the data file now reflects every record up to the
      // staged LSN, so publish a new superblock version pointing at it and
      // reclaim the log. Crash before the Write keeps the old superblock
      // (old LSN, longer replay); crash between Write and Reset replays a
      // redundant-but-idempotent tail. Both are correct.
      [this]() -> Status {
        SuperblockData sb = BuildSuperblock();
        sb.version = sb_version_ + 1;
        sb.checkpoint_lsn = pending_checkpoint_lsn_;
        sb.clean_shutdown = clean_next_publish_;
        NBLB_RETURN_NOT_OK(
            Superblock::Write(Superblock::PathFor(options_.path), sb));
        sb_version_ = sb.version;
        checkpoint_lsn_ = sb.checkpoint_lsn;
        NBLB_RETURN_NOT_OK(wal_->Reset());
        RecordFlightEvent(FlightEvent::kCheckpoint, sb.version,
                          sb.checkpoint_lsn);
        return Status::OK();
      });
}

SuperblockData Shard::BuildSuperblock() const {
  SuperblockData sb;
  sb.page_size = static_cast<uint32_t>(options_.page_size);
  sb.num_pages = static_cast<uint32_t>(db_->disk()->num_pages());
  sb.heap_first_page = table_->heap()->first_page_id();
  sb.btree_meta_page = table_->index()->meta_page_id();
  sb.semid_partition_bits = options_.semid_partition_bits;
  sb.reuse_free_slots = options_.table_options.reuse_free_slots;
  sb.enable_index_cache = options_.table_options.enable_index_cache;
  for (size_t c : options_.table_options.key_columns) {
    sb.key_columns.push_back(static_cast<uint32_t>(c));
  }
  for (size_t c : options_.table_options.cached_columns) {
    sb.cached_columns.push_back(static_cast<uint32_t>(c));
  }
  sb.columns = options_.schema.columns();
  return sb;
}

Status Shard::ReplayWal() {
  const size_t row_size = options_.schema.row_size();
  return wal_->Replay(checkpoint_lsn_, [&](const Wal::Record& rec) -> Status {
    switch (rec.op) {
      case Wal::Op::kPut: {
        if (rec.payload.size() != row_size) {
          return Status::Corruption("WAL put payload width mismatch");
        }
        Row row = table_->row_codec().Decode(rec.payload.data());
        NBLB_RETURN_NOT_OK(table_->UpsertByKey(row));
        break;
      }
      case Wal::Op::kDelete: {
        Status s = table_->DeleteByKey(KeyOf(rec.key));
        if (!s.ok() && !s.IsNotFound()) return s;
        break;
      }
    }
    ++replayed_records_;
    return Status::OK();
  });
}

Status Shard::LogPut(uint64_t id, const Row& row) {
  if (!wal_) return Status::OK();
  NBLB_ASSIGN_OR_RETURN(std::string bytes, table_->row_codec().Encode(row));
  auto lsn = wal_->Append(Wal::Op::kPut, id, Slice(bytes));
  return lsn.ok() ? Status::OK() : lsn.status();
}

Status Shard::LogDelete(uint64_t id) {
  if (!wal_) return Status::OK();
  auto lsn = wal_->Append(Wal::Op::kDelete, id, Slice());
  return lsn.ok() ? Status::OK() : lsn.status();
}

std::vector<Value> Shard::KeyOf(uint64_t id) const {
  return {Value::Int64(static_cast<int64_t>(id))};
}

Status Shard::Insert(const Row& row) {
  stats_.Add(stats_.inserts);
  Status s = partitioned_ ? partitioned_->InsertHot(row, nullptr)
                          : table_->Insert(row);
  if (!s.ok()) {
    stats_.Add(stats_.errors);
    return s;
  }
  ++rows_;
  if (wal_) {
    const size_t key_col = options_.table_options.key_columns[0];
    Status ls = LogPut(static_cast<uint64_t>(row[key_col].AsInt()), row);
    if (!ls.ok()) {
      // The in-memory insert stands, but the op is NOT acked: the record
      // never reached the log, so recovery would not reproduce it. The
      // sticky WAL error also fails the group commit.
      stats_.Add(stats_.errors);
      return ls;
    }
  }
  return s;
}

Result<Row> Shard::Get(uint64_t id) {
  stats_.Add(stats_.gets);
  auto result = partitioned_
                    ? partitioned_->LookupProjected(KeyOf(id), all_columns_)
                    : table_->GetByKey(KeyOf(id));
  if (!result.ok()) {
    stats_.Add(result.status().IsNotFound() ? stats_.not_found
                                            : stats_.errors);
  }
  return result;
}

Status Shard::GetBatch(const std::vector<uint64_t>& ids,
                       std::vector<Result<Row>>* out) {
  TraceTimer span(TracePhase::kGetBatch);
  stats_.Add(stats_.gets, ids.size());
  stats_.Add(stats_.batch_gets, ids.size());
  std::vector<std::vector<Value>> keys;
  keys.reserve(ids.size());
  for (uint64_t id : ids) keys.push_back(KeyOf(id));
  const size_t first = out->size();
  if (partitioned_) {
    // Hot/cold shards batch too: one hot-partition probe, then a single
    // cold batch over the hot misses.
    NBLB_RETURN_NOT_OK(partitioned_->GetBatchByKey(keys, out));
    for (size_t i = first; i < out->size(); ++i) {
      if (!(*out)[i].ok()) {
        stats_.Add((*out)[i].status().IsNotFound() ? stats_.not_found
                                                   : stats_.errors);
      }
    }
    return Status::OK();
  }
  NBLB_RETURN_NOT_OK(table_->GetBatchByKey(keys, out));
  for (size_t i = first; i < out->size(); ++i) {
    if (!(*out)[i].ok()) {
      stats_.Add((*out)[i].status().IsNotFound() ? stats_.not_found
                                                 : stats_.errors);
    }
  }
  return Status::OK();
}

Status Shard::Update(uint64_t id, const Row& row) {
  stats_.Add(stats_.updates);
  if (partitioned_) {
    stats_.Add(stats_.errors);
    return Status::NotSupported(
        "update on a hot/cold-partitioned shard is not supported yet");
  }
  Status s = table_->UpdateByKey(KeyOf(id), row);
  if (!s.ok()) {
    stats_.Add(s.IsNotFound() ? stats_.not_found : stats_.errors);
    return s;
  }
  if (wal_) {
    Status ls = LogPut(id, row);
    if (!ls.ok()) {
      stats_.Add(stats_.errors);
      return ls;
    }
  }
  return s;
}

Status Shard::Delete(uint64_t id) {
  stats_.Add(stats_.deletes);
  if (partitioned_) {
    stats_.Add(stats_.errors);
    return Status::NotSupported(
        "delete on a hot/cold-partitioned shard is not supported yet");
  }
  Status s = table_->DeleteByKey(KeyOf(id));
  if (!s.ok()) {
    stats_.Add(s.IsNotFound() ? stats_.not_found : stats_.errors);
    return s;
  }
  --rows_;
  if (wal_) {
    Status ls = LogDelete(id);
    if (!ls.ok()) {
      stats_.Add(stats_.errors);
      return ls;
    }
  }
  return s;
}

Result<Row> Shard::GetProjected(uint64_t id,
                                const std::vector<size_t>& projection) {
  stats_.Add(stats_.projected_gets);
  auto result =
      partitioned_
          ? partitioned_->LookupProjected(KeyOf(id), projection)
          : table_->LookupProjected(KeyOf(id), projection);
  if (!result.ok()) {
    stats_.Add(result.status().IsNotFound() ? stats_.not_found
                                            : stats_.errors);
  }
  return result;
}

Status Shard::EnableHotCold(
    const std::unordered_set<std::string>& hot_encoded_keys) {
  if (partitioned_) {
    return Status::InvalidArgument("shard is already hot/cold partitioned");
  }
  if (durable_) {
    // The WAL logs against the single "data" table and recovery reattaches
    // it; the hot/cold split has no durable catalog entry yet.
    return Status::NotSupported(
        "hot/cold partitioning is not supported on a WAL-enabled shard");
  }
  NBLB_ASSIGN_OR_RETURN(
      partitioned_, PartitionedTable::BuildFromTable(
                        db_->buffer_pool(), table_, hot_encoded_keys));
  return Status::OK();
}

}  // namespace nblb
