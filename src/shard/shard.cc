#include "shard/shard.h"

#include <cstdio>
#include <filesystem>
#include <system_error>
#include <utility>

#include "catalog/type.h"
#include "common/logging.h"
#include "obs/trace.h"

namespace nblb {

Shard::Shard(uint32_t shard_id, ShardOptions options)
    : id_(shard_id), options_(std::move(options)) {}

Shard::~Shard() = default;

Result<std::unique_ptr<Shard>> Shard::Open(uint32_t shard_id,
                                           ShardOptions options) {
  if (options.table_options.key_columns.size() != 1) {
    return Status::InvalidArgument(
        "shard tables need a single-column primary key (the routing key)");
  }
  const size_t key_col = options.table_options.key_columns[0];
  if (key_col >= options.schema.num_columns() ||
      !IsIntegerFamily(options.schema.column(key_col).type)) {
    return Status::InvalidArgument(
        "shard routing key must be an integer-family column");
  }
  // Normalize the coalescing knobs here, where they live — the engine's
  // worker reads them back through options(), and a direct Shard::Open
  // must uphold the same invariants the engine validates.
  if (options.min_coalesce_window == 0) options.min_coalesce_window = 1;
  if (options.max_coalesce_window < options.min_coalesce_window) {
    return Status::InvalidArgument(
        "max_coalesce_window must be >= min_coalesce_window");
  }

  std::unique_ptr<Shard> shard(new Shard(shard_id, std::move(options)));

  DatabaseOptions dbo;
  dbo.path = shard->options_.path;
  dbo.page_size = shard->options_.page_size;
  dbo.buffer_pool_frames = shard->options_.buffer_pool_frames;
  dbo.buffer_pool_stripes = shard->options_.buffer_pool_stripes;
  dbo.direct_io = shard->options_.direct_io;
  dbo.io_backend = shard->options_.io_backend;
  dbo.io_queue_depth = shard->options_.io_queue_depth;
  dbo.io_threads = shard->options_.io_threads;
  dbo.flusher_interval_us = shard->options_.flusher_interval_us;
  dbo.flush_batch_pages = shard->options_.flush_batch_pages;
  dbo.sync_writeback = shard->options_.sync_writeback;
  if (shard->options_.truncate) {
    std::remove(dbo.path.c_str());
  } else {
    std::error_code ec;
    const bool exists = std::filesystem::exists(dbo.path, ec);
    if (ec) {
      // Can't prove the path is clear — refuse rather than risk the
      // downstream O_CREAT (no O_EXCL) silently clobbering a file the
      // guard exists to protect.
      return Status::IOError("cannot probe shard path (" + ec.message() +
                             "); refusing guarded open: " + dbo.path);
    }
    if (exists) {
      // Durable reopen is not implemented (ROADMAP): the catalog is not
      // persisted, so "opening" an existing file would really mean
      // silently clobbering it. Refuse instead of destroying data.
      return Status::AlreadyExists(
          "shard backing file exists and truncate=false; durable reopen is "
          "not supported — pass truncate=true to rebuild: " +
          dbo.path);
    }
  }
  NBLB_ASSIGN_OR_RETURN(shard->db_, Database::Open(dbo));
  // The shard's op counters join the database's registry, so one
  // Database::DumpMetrics() covers disk + buffer pool + shard in a single
  // document. stats_ outlives db_ (member order), so the pointers stay
  // valid for the registry's whole life.
  shard->stats_.RegisterMetrics(shard->db_->metrics(), "shard.");
  NBLB_ASSIGN_OR_RETURN(
      shard->table_,
      shard->db_->CreateTable("data", shard->options_.schema,
                              shard->options_.table_options));

  shard->all_columns_.resize(shard->options_.schema.num_columns());
  for (size_t i = 0; i < shard->all_columns_.size(); ++i) {
    shard->all_columns_[i] = i;
  }
  return shard;
}

std::vector<Value> Shard::KeyOf(uint64_t id) const {
  return {Value::Int64(static_cast<int64_t>(id))};
}

Status Shard::Insert(const Row& row) {
  stats_.Add(stats_.inserts);
  Status s = partitioned_ ? partitioned_->InsertHot(row, nullptr)
                          : table_->Insert(row);
  if (!s.ok()) {
    stats_.Add(stats_.errors);
  } else {
    ++rows_;
  }
  return s;
}

Result<Row> Shard::Get(uint64_t id) {
  stats_.Add(stats_.gets);
  auto result = partitioned_
                    ? partitioned_->LookupProjected(KeyOf(id), all_columns_)
                    : table_->GetByKey(KeyOf(id));
  if (!result.ok()) {
    stats_.Add(result.status().IsNotFound() ? stats_.not_found
                                            : stats_.errors);
  }
  return result;
}

Status Shard::GetBatch(const std::vector<uint64_t>& ids,
                       std::vector<Result<Row>>* out) {
  TraceTimer span(TracePhase::kGetBatch);
  stats_.Add(stats_.gets, ids.size());
  stats_.Add(stats_.batch_gets, ids.size());
  std::vector<std::vector<Value>> keys;
  keys.reserve(ids.size());
  for (uint64_t id : ids) keys.push_back(KeyOf(id));
  const size_t first = out->size();
  if (partitioned_) {
    // Hot/cold shards batch too: one hot-partition probe, then a single
    // cold batch over the hot misses.
    NBLB_RETURN_NOT_OK(partitioned_->GetBatchByKey(keys, out));
    for (size_t i = first; i < out->size(); ++i) {
      if (!(*out)[i].ok()) {
        stats_.Add((*out)[i].status().IsNotFound() ? stats_.not_found
                                                   : stats_.errors);
      }
    }
    return Status::OK();
  }
  NBLB_RETURN_NOT_OK(table_->GetBatchByKey(keys, out));
  for (size_t i = first; i < out->size(); ++i) {
    if (!(*out)[i].ok()) {
      stats_.Add((*out)[i].status().IsNotFound() ? stats_.not_found
                                                 : stats_.errors);
    }
  }
  return Status::OK();
}

Status Shard::Update(uint64_t id, const Row& row) {
  stats_.Add(stats_.updates);
  if (partitioned_) {
    stats_.Add(stats_.errors);
    return Status::NotSupported(
        "update on a hot/cold-partitioned shard is not supported yet");
  }
  Status s = table_->UpdateByKey(KeyOf(id), row);
  if (!s.ok()) {
    stats_.Add(s.IsNotFound() ? stats_.not_found : stats_.errors);
  }
  return s;
}

Status Shard::Delete(uint64_t id) {
  stats_.Add(stats_.deletes);
  if (partitioned_) {
    stats_.Add(stats_.errors);
    return Status::NotSupported(
        "delete on a hot/cold-partitioned shard is not supported yet");
  }
  Status s = table_->DeleteByKey(KeyOf(id));
  if (!s.ok()) {
    stats_.Add(s.IsNotFound() ? stats_.not_found : stats_.errors);
  } else {
    --rows_;
  }
  return s;
}

Result<Row> Shard::GetProjected(uint64_t id,
                                const std::vector<size_t>& projection) {
  stats_.Add(stats_.projected_gets);
  auto result =
      partitioned_
          ? partitioned_->LookupProjected(KeyOf(id), projection)
          : table_->LookupProjected(KeyOf(id), projection);
  if (!result.ok()) {
    stats_.Add(result.status().IsNotFound() ? stats_.not_found
                                            : stats_.errors);
  }
  return result;
}

Status Shard::EnableHotCold(
    const std::unordered_set<std::string>& hot_encoded_keys) {
  if (partitioned_) {
    return Status::InvalidArgument("shard is already hot/cold partitioned");
  }
  NBLB_ASSIGN_OR_RETURN(
      partitioned_, PartitionedTable::BuildFromTable(
                        db_->buffer_pool(), table_, hot_encoded_keys));
  return Status::OK();
}

}  // namespace nblb
