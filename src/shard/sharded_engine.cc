#include "shard/sharded_engine.h"

#include <algorithm>
#include <filesystem>
#include <system_error>
#include <utility>

#include "common/logging.h"
#include "obs/event_ring.h"

namespace nblb {

Result<std::unique_ptr<ShardedEngine>> ShardedEngine::Open(
    ShardedEngineOptions options, std::unique_ptr<Router> router) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (options.min_coalesce_window == 0) options.min_coalesce_window = 1;
  if (options.max_coalesce_window < options.min_coalesce_window) {
    return Status::InvalidArgument(
        "max_coalesce_window must be >= min_coalesce_window");
  }
  std::unique_ptr<ShardedEngine> engine(new ShardedEngine());
  engine->options_ = options;
  engine->router_ = router ? std::move(router)
                           : std::make_unique<HashRouter>(options.num_shards);

  // Observability: the engine-level registry covers the engine counters and
  // the trace aggregator; per-shard Database registries are folded in at
  // snapshot time (MetricsSnapshotNow). Tracing is resolved once here —
  // NBLB_OBS_OFF wins over the option.
  engine->tracing_ = options.trace_sample_every > 0 && ObsEnabled();
  engine->tracer_.reset(new TraceAggregator());
  engine->metrics_.reset(new MetricsRegistry());
  engine->metrics_->RegisterCounter("engine.batches", &engine->batches_);
  engine->metrics_->RegisterCounter("engine.requests", &engine->requests_);
  engine->metrics_->RegisterCounter("engine.routing_failures",
                                    &engine->routing_failures_);
  engine->metrics_->RegisterCounter("engine.async_submits",
                                    &engine->async_submits_);
  engine->metrics_->RegisterCounter("engine.busy_rejections",
                                    &engine->busy_rejections_);
  engine->tracer_->RegisterMetrics(engine->metrics_.get(), "trace.");

  std::vector<std::string> created_paths;
  for (uint32_t i = 0; i < options.num_shards; ++i) {
    ShardOptions so;
    so.path = options.path_prefix + ".shard" + std::to_string(i) + ".db";
    so.truncate = options.truncate_on_open;
    so.page_size = options.page_size;
    so.buffer_pool_frames = options.buffer_pool_frames_per_shard;
    so.direct_io = options.direct_io;
    so.min_coalesce_window = options.min_coalesce_window;
    so.max_coalesce_window = options.max_coalesce_window;
    so.drain_deadline_us = options.drain_deadline_us;
    so.io_backend = options.io_backend;
    so.io_queue_depth = options.io_queue_depth;
    so.io_threads = options.io_threads;
    so.flusher_interval_us = options.flusher_interval_us;
    so.flush_batch_pages = options.flush_batch_pages;
    so.sync_writeback = options.sync_writeback;
    so.wal_enabled = options.wal_enabled;
    so.semid_partition_bits = options.semid_partition_bits;
    so.schema = options.schema;
    so.table_options = options.table_options;
    // Record the path BEFORE attempting the open: a Shard::Open that
    // creates the file and then fails a later step must still get its
    // debris removed below. The only paths NOT recorded are pre-existing
    // files under the guard (truncate_on_open=false) — a guard trip must
    // never delete the data it is guarding. Under truncate the open
    // destroys a pre-existing file anyway, so what's left after a failure
    // is this attempt's debris and is recorded for cleanup.
    std::string path = so.path;
    std::error_code ec;
    bool preexisting = std::filesystem::exists(path, ec);
    // Probe failure: conservatively assume the file exists — cleanup must
    // never delete something it cannot prove this attempt created.
    if (ec) preexisting = true;
    if (!preexisting || options.truncate_on_open) {
      created_paths.push_back(path);
      if (options.wal_enabled) {
        // Durability sidecars are this attempt's debris too.
        created_paths.push_back(Superblock::PathFor(path));
        created_paths.push_back(Wal::PathFor(path));
      }
    }
    auto shard_result = Shard::Open(i, std::move(so));
    if (!shard_result.ok()) {
      // Remove every file this attempt created so a failed open leaves no
      // debris — in particular, a guarded open (truncate_on_open=false)
      // that trips on shard k must not leave fresh empty files that would
      // then block the operator's own retry. Shards are released (files
      // closed) before the unlink.
      engine->shards_.clear();
      for (const std::string& p : created_paths) std::remove(p.c_str());
      return shard_result.status();
    }
    engine->shards_.push_back(std::move(*shard_result));
    auto queue = std::make_unique<ShardQueue>();
    queue->window = options.min_coalesce_window;
    engine->queues_.push_back(std::move(queue));
  }

  uint32_t num_workers =
      options.num_workers == 0 ? options.num_shards : options.num_workers;
  if (num_workers > options.num_shards) num_workers = options.num_shards;
  for (uint32_t w = 0; w < num_workers; ++w) {
    engine->workers_.push_back(std::make_unique<Worker>());
  }
  for (uint32_t s = 0; s < options.num_shards; ++s) {
    engine->workers_[s % num_workers]->shards.push_back(s);
  }
  for (auto& worker : engine->workers_) {
    Worker* w = worker.get();
    w->thread = std::thread([engine_ptr = engine.get(), w] {
      engine_ptr->WorkerLoop(w);
    });
  }
  for (uint32_t c = 0; c < options.num_completion_threads; ++c) {
    engine->completion_threads_.emplace_back(
        [engine_ptr = engine.get()] { engine_ptr->CompletionLoop(); });
  }
  return engine;
}

ShardedEngine::~ShardedEngine() {
  // Workers drain their queues before exiting (stop is honored only at
  // queued == 0), so every in-flight ticket reaches FinishTicket.
  stop_.store(true, std::memory_order_release);
  for (auto& worker : workers_) {
    {
      std::lock_guard<std::mutex> lk(worker->mu);
    }
    worker->cv.notify_all();
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  // Only after the workers are gone can the completion queue stop growing;
  // the completion threads drain it fully before exiting, so no Wait()er
  // is left hanging.
  {
    std::lock_guard<std::mutex> lk(completion_mu_);
    completion_stop_ = true;
  }
  completion_cv_.notify_all();
  for (auto& t : completion_threads_) {
    if (t.joinable()) t.join();
  }
}

// ---- Ticket -----------------------------------------------------------------

void ShardedEngine::Ticket::Wait() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [this] { return done_; });
}

bool ShardedEngine::Ticket::TryWait() {
  std::lock_guard<std::mutex> lk(mu_);
  return done_;
}

void ShardedEngine::Ticket::MarkDone() {
  // A completed ticket only serves its result: drop the request payloads
  // and the callback closure so a caller holding TicketPtrs for later
  // harvesting doesn't pin every submitted row and captured state.
  on_complete_ = nullptr;
  batch_ = nullptr;
  RequestBatch().swap(owned_batch_);
  {
    std::lock_guard<std::mutex> lk(mu_);
    done_ = true;
  }
  cv_.notify_all();
}

// ---- Routing ----------------------------------------------------------------

Result<uint32_t> ShardedEngine::RouteOf(uint64_t id) const {
  SharedLatchGuard guard(route_latch_);
  NBLB_ASSIGN_OR_RETURN(uint32_t partition, router_->Route(id));
  return partition % num_shards();
}

Result<uint32_t> ShardedEngine::RouteRequest(const Request& request) {
  {
    SharedLatchGuard guard(route_latch_);
    auto routed = router_->Route(request.id);
    if (routed.ok()) return *routed % num_shards();
    if (request.kind != RequestKind::kInsert ||
        !routed.status().IsNotFound()) {
      return routed.status();
    }
  }
  // First-seen insert key under a stateful router: pick a home shard
  // round-robin and teach the router. Re-route under the exclusive latch —
  // a concurrent inserter of the same id may have won the race.
  ExclusiveLatchGuard guard(route_latch_);
  auto routed = router_->Route(request.id);
  if (routed.ok()) return *routed % num_shards();
  const uint32_t shard =
      static_cast<uint32_t>(next_placement_++ % num_shards());
  router_->Learn(request.id, shard);
  return shard;
}

// ---- Submission -------------------------------------------------------------

ShardedEngine::TicketPtr ShardedEngine::Submit(RequestBatch batch,
                                               CompletionFn on_complete) {
  TicketPtr ticket(new Ticket());
  ticket->owned_batch_ = std::move(batch);
  ticket->batch_ = &ticket->owned_batch_;
  ticket->on_complete_ = std::move(on_complete);
  SubmitTicket(ticket);
  return ticket;
}

ShardedEngine::TicketPtr ShardedEngine::SubmitRef(const RequestBatch& batch,
                                                  CompletionFn on_complete) {
  TicketPtr ticket(new Ticket());
  ticket->batch_ = &batch;  // caller guarantees lifetime until completion
  ticket->on_complete_ = std::move(on_complete);
  SubmitTicket(ticket);
  return ticket;
}

BatchResult ShardedEngine::Execute(const RequestBatch& batch) {
  // Thin blocking wrapper over the async path: submit-by-reference (the
  // caller's batch outlives the Wait) + Wait.
  TicketPtr ticket = SubmitRef(batch);
  ticket->Wait();
  return ticket->TakeResult();
}

void ShardedEngine::SubmitTicket(const TicketPtr& ticket) {
  if (ticket->on_complete_) {
    async_submits_.fetch_add(1, std::memory_order_relaxed);
  }
  const RequestBatch& batch = *ticket->batch_;
  BatchResult& out = ticket->result_;
  out.results.resize(batch.size());

  // Phase 1 — route on the caller's thread, grouping indexes by home shard.
  std::vector<std::vector<uint32_t>> per_shard(num_shards());
  for (uint32_t i = 0; i < batch.size(); ++i) {
    auto routed = RouteRequest(batch[i]);
    if (!routed.ok()) {
      out.results[i].status = routed.status();
      routing_failures_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    out.results[i].shard = *routed;
    per_shard[*routed].push_back(i);
  }

  // Phase 2 — fan out one sub-batch per involved shard. pending_ is armed
  // before the first enqueue: a worker may finish the first sub-batch while
  // later ones are still being pushed.
  uint32_t involved = 0;
  for (const auto& indexes : per_shard) {
    if (!indexes.empty()) ++involved;
  }
  if (involved == 0) {
    // Empty batch or every request failed routing: complete immediately.
    FinishTicket(ticket);
    return;
  }
  ticket->pending_.store(involved, std::memory_order_relaxed);

  const auto now = std::chrono::steady_clock::now();
  const size_t max_depth = options_.max_queue_depth;
  for (uint32_t s = 0; s < per_shard.size(); ++s) {
    if (per_shard[s].empty()) continue;
    // 1-in-N sampler, decided per sub-batch off the queue lock. The context
    // is stamped with the shared enqueue timestamp here and handed to the
    // serving worker through the queue mutex (single-writer handoff — see
    // obs/trace.h).
    std::unique_ptr<TraceContext> trace;
    if (tracing_) {
      const uint64_t n =
          trace_counter_.fetch_add(1, std::memory_order_relaxed);
      if (n % options_.trace_sample_every == 0) {
        trace.reset(new TraceContext());
        trace->trace_id = n;
        trace->enqueued = now;
        ticket->traced_ = true;
      }
    }
    ShardQueue* queue = queues_[s].get();
    Worker* owner = workers_[s % workers_.size()].get();
    {
      std::unique_lock<std::mutex> lk(queue->mu);
      if (max_depth > 0 && queue->work.size() >= max_depth) {
        const uint64_t full_depth = queue->work.size();
        if (options_.busy_fail_fast) {
          // Fail fast: every request bound for this shard completes kBusy
          // without ever touching the queue. The sub-batch's pending_ slot
          // is retired here, so the ticket still completes normally.
          lk.unlock();
          RecordFlightEvent(FlightEvent::kBusyReject, s, full_depth);
          busy_rejections_.fetch_add(per_shard[s].size(),
                                     std::memory_order_relaxed);
          for (uint32_t i : per_shard[s]) {
            out.results[i].status =
                Status::Busy("shard " + std::to_string(s) +
                             " queue full (max_queue_depth)");
          }
          if (ticket->pending_.fetch_sub(1, std::memory_order_acq_rel) ==
              1) {
            FinishTicket(ticket);
          }
          continue;
        }
        // Blocking backpressure: wait for the owning worker to drain below
        // the bound. The wait releases queue->mu, so the worker's pops make
        // progress; ~ShardedEngine never runs concurrently with Submit, so
        // no shutdown wakeup is needed here.
        RecordFlightEvent(FlightEvent::kCapacityWait, s, full_depth);
        queue->space_cv.wait(
            lk, [&] { return queue->work.size() < max_depth; });
      }
      SubBatch sub;
      sub.ticket = ticket;
      sub.indexes = std::move(per_shard[s]);
      sub.enqueued = now;
      sub.trace = std::move(trace);
      queue->work.push_back(std::move(sub));
      // Both counters inside the critical section so neither can lag
      // behind a concurrent pop: the pop of this element takes the same
      // mutex, so its decrements always follow these adds — a lagging add
      // would otherwise let the matching fetch_sub wrap the count.
      queue->size.fetch_add(1, std::memory_order_release);
      owner->queued.fetch_add(1, std::memory_order_release);
    }
    {
      // Empty critical section: pairs with the owner's predicate check so
      // the queued increment cannot fall into a missed-wakeup window.
      std::lock_guard<std::mutex> lk(owner->mu);
    }
    owner->cv.notify_one();
  }
}

void ShardedEngine::FinishTicket(const TicketPtr& ticket) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  requests_.fetch_add(ticket->batch_->size(), std::memory_order_relaxed);
  // Completion-dispatch span start: the sub-batch contexts are already
  // retired by now, so the dispatch leg is measured separately (see
  // TraceAggregator::RecordCompletion). finished_at_ crosses to the
  // completion thread through completion_mu_.
  if (ticket->traced_) {
    ticket->finished_at_ = std::chrono::steady_clock::now();
  }
  if (ticket->on_complete_ && !completion_threads_.empty()) {
    {
      std::lock_guard<std::mutex> lk(completion_mu_);
      completions_.push_back(ticket);
    }
    completion_cv_.notify_one();
    return;
  }
  // No callback (or no pool): complete inline on the finishing thread.
  if (ticket->traced_) RecordCompletionSpan(ticket);
  if (ticket->on_complete_) ticket->on_complete_(ticket->result_);
  ticket->MarkDone();
}

void ShardedEngine::RecordCompletionSpan(const TicketPtr& ticket) {
  const auto now = std::chrono::steady_clock::now();
  tracer_->RecordCompletion(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          now - ticket->finished_at_)
          .count()));
}

void ShardedEngine::CompletionLoop() {
  for (;;) {
    TicketPtr ticket;
    {
      std::unique_lock<std::mutex> lk(completion_mu_);
      completion_cv_.wait(lk, [this] {
        return completion_stop_ || !completions_.empty();
      });
      if (completions_.empty()) return;  // stop requested and fully drained
      ticket = std::move(completions_.front());
      completions_.pop_front();
    }
    if (ticket->traced_) RecordCompletionSpan(ticket);
    ticket->on_complete_(ticket->result_);
    ticket->MarkDone();
  }
}

// ---- Workers ----------------------------------------------------------------

void ShardedEngine::WorkerLoop(Worker* worker) {
  std::vector<SubBatch> group;
  for (;;) {
    bool ran_any = false;
    for (uint32_t sid : worker->shards) {
      while (ServeShard(worker, sid, &group)) ran_any = true;
    }
    if (ran_any) continue;
    std::unique_lock<std::mutex> lk(worker->mu);
    worker->cv.wait(lk, [this, worker] {
      return stop_.load(std::memory_order_acquire) ||
             worker->queued.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_acquire) &&
        worker->queued.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

bool ShardedEngine::ServeShard(Worker* worker, uint32_t sid,
                               std::vector<SubBatch>* group) {
  ShardQueue* queue = queues_[sid].get();
  Shard* shard = shards_[sid].get();
  const ShardOptions& knobs = shard->options();

  size_t depth = queue->size.load(std::memory_order_acquire);
  if (depth == 0) return false;

  // Nagle-style hold: the backlog is smaller than the current window and
  // the engine is configured to trade a bounded delay for a fuller group —
  // give concurrent submitters a moment to top it up. Skipped when the
  // window has shrunk to its minimum (idle regime: serve immediately) and
  // when a sibling shard of this worker already has queued work (holding
  // here would head-of-line block it; queued > this queue's size means
  // some other owned queue is non-empty). The wait breaks when this queue
  // fills to the window, or when a SIBLING shard receives work (so it is
  // never delayed by the full deadline) — an arrival on the held queue
  // itself keeps accumulating, which is the entire point of the hold.
  bool hold_timed_out = false;
  if (knobs.drain_deadline_us > 0 && depth < queue->window &&
      queue->window > knobs.min_coalesce_window) {
    const uint64_t queued_before =
        worker->queued.load(std::memory_order_acquire);
    const uint64_t size_before =
        queue->size.load(std::memory_order_acquire);
    if (queued_before <= size_before) {
      // queued - size ≈ sub-batches on sibling queues (transient skew
      // between the two counters can only end the hold early — benign).
      const uint64_t siblings_before = queued_before - size_before;
      std::unique_lock<std::mutex> lk(worker->mu);
      // wait_for returns the predicate's final value: false means the
      // deadline genuinely expired with nothing new arriving anywhere.
      hold_timed_out = !worker->cv.wait_for(
          lk, std::chrono::microseconds(knobs.drain_deadline_us),
          [this, worker, queue, siblings_before] {
            if (stop_.load(std::memory_order_acquire)) return true;
            const uint64_t size =
                queue->size.load(std::memory_order_acquire);
            if (size >= queue->window) return true;
            return worker->queued.load(std::memory_order_acquire) - size !=
                   siblings_before;
          });
    }
  }

  group->clear();
  {
    std::lock_guard<std::mutex> lk(queue->mu);
    depth = queue->work.size();
    if (depth == 0) return false;
    const size_t take = std::min(depth, queue->window);
    for (size_t i = 0; i < take; ++i) {
      group->push_back(std::move(queue->work.front()));
      queue->work.pop_front();
    }
    queue->size.fetch_sub(take, std::memory_order_release);
    worker->queued.fetch_sub(take, std::memory_order_relaxed);
    if (options_.max_queue_depth > 0) {
      // Backpressured submitters wait on space_cv under queue->mu (held
      // here), so this wakeup cannot be lost.
      queue->space_cv.notify_all();
    }
    // Adapt. Grow only on STRICT excess — backlog beyond what this group
    // takes proves deeper coalescing has material waiting (depth == window
    // with nothing behind it must not grow, or a lone blocked client
    // ratchets the window up and then stalls on the drain deadline).
    // Shrink when the queue is nearly drained, or when a hold just timed
    // out — the submitters cannot sustain this window, so decay it rather
    // than paying the deadline again next group.
    if (depth > queue->window) {
      queue->window = std::min(queue->window * 2, knobs.max_coalesce_window);
    } else if (depth <= 1 || hold_timed_out) {
      queue->window = std::max(queue->window / 2, knobs.min_coalesce_window);
    }
  }

  ShardStats& stats = shard->stats();
  stats.queue_depth.Record(depth);
  stats.coalesced.Record(group->size());
  stats.Add(stats.coalesced_groups);
  RunGroup(shard, group);

  // Periodic durable checkpoint, on the owning worker (single-writer: the
  // checkpoint flushes and republishes structures only this thread
  // mutates). Bounds WAL length and crash-replay time. Best effort — a
  // failed checkpoint leaves the previous superblock in force, which only
  // means a longer replay.
  if (options_.wal_enabled && options_.checkpoint_every_groups > 0) {
    if (++queue->groups_since_checkpoint >=
        options_.checkpoint_every_groups) {
      queue->groups_since_checkpoint = 0;
      Status cs = shard->Checkpoint();
      if (!cs.ok()) shard->stats().Add(shard->stats().errors);
    }
  }
  return true;
}

void ShardedEngine::RunGroup(Shard* shard, std::vector<SubBatch>* group) {
  // Consecutive kGet requests — ACROSS sub-batch boundaries — are drained
  // through the shard's batched read path (shared B+Tree descent + vectored
  // heap-page miss I/O); coalescing the group is what turns queue depth into
  // longer preadv runs. Segmenting at every non-get preserves batch order
  // within the shard, so a lookup that follows a write to the same id still
  // sees the write, including across tickets queued to this shard.
  // Dequeue stamp: close the queue-wait span of every traced sub-batch and
  // elect the FIRST traced context as this thread's active trace for the
  // shared service phases (GetBatch / fetch-start / io-submit / device-wait
  // / copy, attributed via TraceTimer). The group is served as one unit, so
  // one context observing the shared work is the honest attribution — the
  // others still get their own queue-wait and service spans.
  TraceContext* active_trace = nullptr;
  std::chrono::steady_clock::time_point dequeued{};
  for (SubBatch& sub : *group) {
    if (!sub.trace) continue;
    if (active_trace == nullptr) {
      dequeued = std::chrono::steady_clock::now();
      active_trace = sub.trace.get();
    }
    sub.trace->AddSpan(TracePhase::kQueueWait, sub.enqueued, dequeued);
  }

  std::vector<uint64_t> run_ids;
  std::vector<RequestResult*> run_slots;
  auto flush_gets = [&] {
    if (run_ids.empty()) return;
    std::vector<Result<Row>> rows;
    Status s = shard->GetBatch(run_ids, &rows);
    for (size_t k = 0; k < run_slots.size(); ++k) {
      RequestResult& result = *run_slots[k];
      if (!s.ok()) {
        result.status = s;
      } else if (rows[k].ok()) {
        result.row = std::move(*rows[k]);
      } else {
        result.status = rows[k].status();
      }
    }
    run_ids.clear();
    run_slots.clear();
  };

  {
    // Scoped so the thread-local pointer is cleared before the contexts are
    // retired and destroyed below.
    ActiveTraceScope trace_scope(active_trace);
    for (SubBatch& sub : *group) {
      const RequestBatch& batch = *sub.ticket->batch_;
      BatchResult& out = sub.ticket->result_;
      for (uint32_t i : sub.indexes) {
        const Request& request = batch[i];
        RequestResult& result = out.results[i];
        if (request.kind == RequestKind::kGet) {
          run_ids.push_back(request.id);
          run_slots.push_back(&result);
          continue;
        }
        flush_gets();
        switch (request.kind) {
          case RequestKind::kGetProjected: {
            auto row = shard->GetProjected(request.id, request.projection);
            if (row.ok()) {
              result.row = std::move(*row);
            } else {
              result.status = row.status();
            }
            break;
          }
          case RequestKind::kInsert:
            result.status = shard->Insert(request.row);
            break;
          case RequestKind::kUpdate:
            result.status = shard->Update(request.id, request.row);
            break;
          case RequestKind::kDelete:
            result.status = shard->Delete(request.id);
            break;
          case RequestKind::kGet:
            break;  // handled above
        }
      }
      shard->NoteSubBatch();
    }
    flush_gets();
  }

  // Group commit (wal_enabled): every write op in this group appended log
  // records; make them durable in one vectored write + fsync BEFORE any of
  // the group's tickets can complete — the ack barrier. On failure, poison
  // every apparently-successful write result in the group: those mutations
  // are in memory but not in the log, so acking them would promise a
  // durability we cannot deliver.
  Status commit = shard->CommitWal();
  if (!commit.ok()) {
    for (SubBatch& sub : *group) {
      const RequestBatch& batch = *sub.ticket->batch_;
      BatchResult& out = sub.ticket->result_;
      for (uint32_t i : sub.indexes) {
        const RequestKind kind = batch[i].kind;
        if ((kind == RequestKind::kInsert || kind == RequestKind::kUpdate ||
             kind == RequestKind::kDelete) &&
            out.results[i].status.ok()) {
          out.results[i].status = commit;
        }
      }
    }
  }

  const auto now = std::chrono::steady_clock::now();
  ShardStats& stats = shard->stats();
  for (SubBatch& sub : *group) {
    stats.sub_batch_latency_us.Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(now -
                                                              sub.enqueued)
            .count()));
    if (sub.trace) {
      // Close the service span and retire the context before the ticket can
      // complete — the aggregator's histograms are the only thing that
      // outlives the sub-batch.
      sub.trace->AddSpan(TracePhase::kService, dequeued, now);
      tracer_->Retire(*sub.trace, now);
      sub.trace.reset();
    }
    TicketPtr ticket = std::move(sub.ticket);
    // acq_rel: see Ticket::pending_. The last decrementer observes every
    // other worker's result writes and completes the ticket.
    if (ticket->pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      FinishTicket(ticket);
    }
  }
  group->clear();
}

// ---- Single-op conveniences -------------------------------------------------

Status ShardedEngine::Insert(uint64_t id, Row row) {
  RequestBatch batch;
  batch.push_back(Request::Insert(id, std::move(row)));
  return Execute(batch).results[0].status;
}

Result<Row> ShardedEngine::Get(uint64_t id) {
  RequestBatch batch;
  batch.push_back(Request::Get(id));
  auto result = Execute(batch);
  if (!result.results[0].status.ok()) return result.results[0].status;
  return std::move(result.results[0].row);
}

Result<Row> ShardedEngine::GetProjected(uint64_t id,
                                        std::vector<size_t> projection) {
  RequestBatch batch;
  batch.push_back(Request::GetProjected(id, std::move(projection)));
  auto result = Execute(batch);
  if (!result.results[0].status.ok()) return result.results[0].status;
  return std::move(result.results[0].row);
}

Status ShardedEngine::Update(uint64_t id, Row row) {
  RequestBatch batch;
  batch.push_back(Request::Update(id, std::move(row)));
  return Execute(batch).results[0].status;
}

Status ShardedEngine::Delete(uint64_t id) {
  RequestBatch batch;
  batch.push_back(Request::Delete(id));
  return Execute(batch).results[0].status;
}

Status ShardedEngine::EnableHotCold(
    uint32_t shard, const std::unordered_set<std::string>& hot_keys) {
  if (shard >= num_shards()) {
    return Status::InvalidArgument("no such shard");
  }
  return shards_[shard]->EnableHotCold(hot_keys);
}

ShardStatsSnapshot ShardedEngine::TotalShardStats() const {
  ShardStatsSnapshot total;
  for (const auto& shard : shards_) total += shard->stats().Snapshot();
  return total;
}

MetricsSnapshot ShardedEngine::MetricsSnapshotNow() const {
  // "engine.*" and "trace.*" from the engine's own registry, then each
  // shard's Database registry folded in under "shard<i>." — one document
  // covering every layer of the stack.
  MetricsSnapshot snap = metrics_->Snapshot();
  for (size_t i = 0; i < shards_.size(); ++i) {
    snap.Merge(shards_[i]->database()->metrics()->Snapshot(),
               "shard" + std::to_string(i) + ".");
  }
  return snap;
}

EngineStatsSnapshot ShardedEngine::engine_stats() const {
  EngineStatsSnapshot s;
  s.batches = batches_.load(std::memory_order_relaxed);
  s.requests = requests_.load(std::memory_order_relaxed);
  s.routing_failures = routing_failures_.load(std::memory_order_relaxed);
  s.async_submits = async_submits_.load(std::memory_order_relaxed);
  s.busy_rejections = busy_rejections_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace nblb
