#include "shard/sharded_engine.h"

#include <utility>

#include "common/logging.h"

namespace nblb {

Result<std::unique_ptr<ShardedEngine>> ShardedEngine::Open(
    ShardedEngineOptions options, std::unique_ptr<Router> router) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  std::unique_ptr<ShardedEngine> engine(new ShardedEngine());
  engine->options_ = options;
  engine->router_ = router ? std::move(router)
                           : std::make_unique<HashRouter>(options.num_shards);

  for (uint32_t i = 0; i < options.num_shards; ++i) {
    ShardOptions so;
    so.path = options.path_prefix + ".shard" + std::to_string(i) + ".db";
    so.page_size = options.page_size;
    so.buffer_pool_frames = options.buffer_pool_frames_per_shard;
    so.direct_io = options.direct_io;
    so.schema = options.schema;
    so.table_options = options.table_options;
    NBLB_ASSIGN_OR_RETURN(auto shard, Shard::Open(i, std::move(so)));
    engine->shards_.push_back(std::move(shard));
    engine->queues_.push_back(std::make_unique<ShardQueue>());
  }

  uint32_t num_workers =
      options.num_workers == 0 ? options.num_shards : options.num_workers;
  if (num_workers > options.num_shards) num_workers = options.num_shards;
  for (uint32_t w = 0; w < num_workers; ++w) {
    engine->workers_.push_back(std::make_unique<Worker>());
  }
  for (uint32_t s = 0; s < options.num_shards; ++s) {
    engine->workers_[s % num_workers]->shards.push_back(s);
  }
  for (auto& worker : engine->workers_) {
    Worker* w = worker.get();
    w->thread = std::thread([engine_ptr = engine.get(), w] {
      engine_ptr->WorkerLoop(w);
    });
  }
  return engine;
}

ShardedEngine::~ShardedEngine() {
  stop_.store(true, std::memory_order_release);
  for (auto& worker : workers_) {
    {
      std::lock_guard<std::mutex> lk(worker->mu);
    }
    worker->cv.notify_all();
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

Result<uint32_t> ShardedEngine::RouteOf(uint64_t id) const {
  SharedLatchGuard guard(route_latch_);
  NBLB_ASSIGN_OR_RETURN(uint32_t partition, router_->Route(id));
  return partition % num_shards();
}

Result<uint32_t> ShardedEngine::RouteRequest(const Request& request) {
  {
    SharedLatchGuard guard(route_latch_);
    auto routed = router_->Route(request.id);
    if (routed.ok()) return *routed % num_shards();
    if (request.kind != RequestKind::kInsert ||
        !routed.status().IsNotFound()) {
      return routed.status();
    }
  }
  // First-seen insert key under a stateful router: pick a home shard
  // round-robin and teach the router. Re-route under the exclusive latch —
  // a concurrent inserter of the same id may have won the race.
  ExclusiveLatchGuard guard(route_latch_);
  auto routed = router_->Route(request.id);
  if (routed.ok()) return *routed % num_shards();
  const uint32_t shard =
      static_cast<uint32_t>(next_placement_++ % num_shards());
  router_->Learn(request.id, shard);
  return shard;
}

BatchResult ShardedEngine::Execute(const RequestBatch& batch) {
  BatchResult out;
  out.results.resize(batch.size());
  if (batch.empty()) return out;

  // Phase 1 — route on the caller's thread, grouping indexes by home shard.
  std::vector<std::vector<uint32_t>> per_shard(num_shards());
  for (uint32_t i = 0; i < batch.size(); ++i) {
    auto routed = RouteRequest(batch[i]);
    if (!routed.ok()) {
      out.results[i].status = routed.status();
      routing_failures_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    out.results[i].shard = *routed;
    per_shard[*routed].push_back(i);
  }

  // Phase 2 — fan out one sub-batch per involved shard.
  BatchState state;
  state.batch = &batch;
  state.out = &out;
  uint32_t involved = 0;
  for (const auto& indexes : per_shard) {
    if (!indexes.empty()) ++involved;
  }
  if (involved == 0) return out;  // every request failed routing
  state.pending.store(involved, std::memory_order_relaxed);

  for (uint32_t s = 0; s < per_shard.size(); ++s) {
    if (per_shard[s].empty()) continue;
    SubBatch sub;
    sub.state = &state;
    sub.indexes = std::move(per_shard[s]);
    {
      std::lock_guard<std::mutex> lk(queues_[s]->mu);
      queues_[s]->work.push_back(std::move(sub));
    }
    Worker* owner = workers_[s % workers_.size()].get();
    owner->queued.fetch_add(1, std::memory_order_release);
    {
      // Empty critical section: pairs with the owner's predicate check so
      // the queued increment cannot fall into a missed-wakeup window.
      std::lock_guard<std::mutex> lk(owner->mu);
    }
    owner->cv.notify_one();
  }

  // Phase 3 — gather: wait for the last worker to flip done.
  {
    std::unique_lock<std::mutex> lk(state.mu);
    state.cv.wait(lk, [&state] { return state.done; });
  }
  batches_.fetch_add(1, std::memory_order_relaxed);
  requests_.fetch_add(batch.size(), std::memory_order_relaxed);
  return out;
}

void ShardedEngine::WorkerLoop(Worker* worker) {
  for (;;) {
    bool ran_any = false;
    for (uint32_t sid : worker->shards) {
      ShardQueue* queue = queues_[sid].get();
      for (;;) {
        SubBatch sub;
        {
          std::lock_guard<std::mutex> lk(queue->mu);
          if (queue->work.empty()) break;
          sub = std::move(queue->work.front());
          queue->work.pop_front();
        }
        worker->queued.fetch_sub(1, std::memory_order_relaxed);
        ran_any = true;
        RunSubBatch(shards_[sid].get(), sub);
      }
    }
    if (ran_any) continue;
    std::unique_lock<std::mutex> lk(worker->mu);
    worker->cv.wait(lk, [this, worker] {
      return stop_.load(std::memory_order_acquire) ||
             worker->queued.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_acquire) &&
        worker->queued.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

void ShardedEngine::RunSubBatch(Shard* shard, const SubBatch& sub) {
  BatchState* state = sub.state;
  const RequestBatch& batch = *state->batch;

  // Consecutive kGet requests are drained through the shard's batched read
  // path (shared B+Tree descent + vectored heap-page miss I/O). Segmenting
  // at every non-get preserves batch order within the shard, so a lookup
  // that follows a write to the same id still sees the write.
  std::vector<uint64_t> run_ids;
  std::vector<uint32_t> run_indexes;
  auto flush_gets = [&] {
    if (run_ids.empty()) return;
    std::vector<Result<Row>> rows;
    Status s = shard->GetBatch(run_ids, &rows);
    for (size_t k = 0; k < run_indexes.size(); ++k) {
      RequestResult& result = state->out->results[run_indexes[k]];
      if (!s.ok()) {
        result.status = s;
      } else if (rows[k].ok()) {
        result.row = std::move(*rows[k]);
      } else {
        result.status = rows[k].status();
      }
    }
    run_ids.clear();
    run_indexes.clear();
  };

  for (uint32_t i : sub.indexes) {
    const Request& request = batch[i];
    RequestResult& result = state->out->results[i];
    if (request.kind == RequestKind::kGet) {
      run_ids.push_back(request.id);
      run_indexes.push_back(i);
      continue;
    }
    flush_gets();
    switch (request.kind) {
      case RequestKind::kGetProjected: {
        auto row = shard->GetProjected(request.id, request.projection);
        if (row.ok()) {
          result.row = std::move(*row);
        } else {
          result.status = row.status();
        }
        break;
      }
      case RequestKind::kInsert:
        result.status = shard->Insert(request.row);
        break;
      case RequestKind::kUpdate:
        result.status = shard->Update(request.id, request.row);
        break;
      case RequestKind::kDelete:
        result.status = shard->Delete(request.id);
        break;
      case RequestKind::kGet:
        break;  // handled above
    }
  }
  flush_gets();
  shard->NoteSubBatch();
  // acq_rel: see BatchState::pending. The last decrementer observes every
  // other worker's result writes and wakes the gatherer.
  if (state->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lk(state->mu);
    state->done = true;
    state->cv.notify_all();
  }
}

Status ShardedEngine::Insert(uint64_t id, Row row) {
  RequestBatch batch;
  batch.push_back(Request::Insert(id, std::move(row)));
  return Execute(batch).results[0].status;
}

Result<Row> ShardedEngine::Get(uint64_t id) {
  RequestBatch batch;
  batch.push_back(Request::Get(id));
  auto result = Execute(batch);
  if (!result.results[0].status.ok()) return result.results[0].status;
  return std::move(result.results[0].row);
}

Result<Row> ShardedEngine::GetProjected(uint64_t id,
                                        std::vector<size_t> projection) {
  RequestBatch batch;
  batch.push_back(Request::GetProjected(id, std::move(projection)));
  auto result = Execute(batch);
  if (!result.results[0].status.ok()) return result.results[0].status;
  return std::move(result.results[0].row);
}

Status ShardedEngine::Update(uint64_t id, Row row) {
  RequestBatch batch;
  batch.push_back(Request::Update(id, std::move(row)));
  return Execute(batch).results[0].status;
}

Status ShardedEngine::Delete(uint64_t id) {
  RequestBatch batch;
  batch.push_back(Request::Delete(id));
  return Execute(batch).results[0].status;
}

Status ShardedEngine::EnableHotCold(
    uint32_t shard, const std::unordered_set<std::string>& hot_keys) {
  if (shard >= num_shards()) {
    return Status::InvalidArgument("no such shard");
  }
  return shards_[shard]->EnableHotCold(hot_keys);
}

ShardStatsSnapshot ShardedEngine::TotalShardStats() const {
  ShardStatsSnapshot total;
  for (const auto& shard : shards_) total += shard->stats().Snapshot();
  return total;
}

EngineStatsSnapshot ShardedEngine::engine_stats() const {
  EngineStatsSnapshot s;
  s.batches = batches_.load(std::memory_order_relaxed);
  s.requests = requests_.load(std::memory_order_relaxed);
  s.routing_failures = routing_failures_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace nblb
