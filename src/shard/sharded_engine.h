// ShardedEngine: the serving layer — N shards, a pluggable router, and a
// fixed worker pool draining per-shard queues.
//
// Request lifecycle (see src/shard/README.md for the long version):
//
//   client thread                          worker thread (owns shard s)
//   ─────────────                          ────────────────────────────
//   Execute(batch)
//     route every id        ── semid::Router, shared-mode latch
//     split into per-shard
//       sub-batches
//     enqueue + wake owner  ──────────────▶ pop sub-batch from shard queue
//     block on batch cv                      run ops on shard (single-writer)
//                                            write results[i] slots
//                           ◀────────────── last worker flips done, signals
//     gather → BatchResult
//
// Threading model: every shard is statically owned by exactly one worker
// (worker = shard % num_workers), so shard-local state (Table, B+Tree,
// IndexCache) is single-threaded by construction and needs no locks. The
// only cross-thread state is (a) the router, guarded by a SharedLatch —
// shared mode for the read-mostly Route calls, exclusive only when an
// insert teaches a TableRouter a new placement — and (b) the atomic batch
// bookkeeping.
//
// Any number of client threads may call Execute concurrently.

#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/latch.h"
#include "common/result.h"
#include "semid/routing.h"
#include "shard/request.h"
#include "shard/shard.h"

namespace nblb {

/// \brief Engine-wide configuration.
struct ShardedEngineOptions {
  uint32_t num_shards = 4;
  /// Worker threads; 0 means one per shard. Shards are statically assigned
  /// worker = shard_id % num_workers.
  uint32_t num_workers = 0;
  /// Shard i's backing file is "<path_prefix>.shard<i>.db". Existing files
  /// under this prefix are removed and recreated on Open (see
  /// ShardOptions::path) — use a distinct prefix per engine.
  std::string path_prefix = "/tmp/nblb_engine";
  size_t page_size = kDefaultPageSize;
  /// Per-shard buffer pool capacity (scale-out model: each shard models a
  /// node with its own fixed RAM budget).
  size_t buffer_pool_frames_per_shard = 4096;
  /// O_DIRECT shard files (see DiskManager): serving misses cost real I/O.
  bool direct_io = false;
  Schema schema;
  TableOptions table_options;
};

/// \brief Engine-level counters (atomics; relaxed — see shard_stats.h for
/// the memory-ordering rationale, which applies unchanged here).
struct EngineStatsSnapshot {
  uint64_t batches = 0;
  uint64_t requests = 0;
  uint64_t routing_failures = 0;
};

/// \brief Owns the shards, the router, and the worker pool.
class ShardedEngine {
 public:
  /// \brief Builds shards and starts workers. `router` may be nullptr, in
  /// which case a HashRouter over num_shards is used. The router's
  /// partitions are folded onto shards modulo num_shards, so an
  /// EmbeddedRouter with more partitions than shards still works.
  static Result<std::unique_ptr<ShardedEngine>> Open(
      ShardedEngineOptions options, std::unique_ptr<Router> router = nullptr);

  /// \brief Joins the workers. Must not race with in-flight Execute calls.
  ~ShardedEngine();
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  // ---- Serving ------------------------------------------------------------

  /// \brief Routes, fans out, executes, and gathers `batch`. Blocks until
  /// every request has a result. Thread safe. Results are in batch order;
  /// per-shard execution preserves batch order, but requests routed to
  /// different shards execute in parallel with no mutual ordering.
  BatchResult Execute(const RequestBatch& batch);

  /// \brief Single-op conveniences (one-element batches; for hot loops,
  /// batch yourself — the queue round-trip is paid per batch × shard).
  Status Insert(uint64_t id, Row row);
  Result<Row> Get(uint64_t id);
  Result<Row> GetProjected(uint64_t id, std::vector<size_t> projection);
  Status Update(uint64_t id, Row row);
  Status Delete(uint64_t id);

  // ---- Placement / topology ----------------------------------------------

  /// \brief Where `id` would be served (shared-mode router read).
  Result<uint32_t> RouteOf(uint64_t id) const;

  /// \brief Switches one shard to hot/cold partitioned mode (§3.1). Call
  /// only while no batches are in flight.
  Status EnableHotCold(uint32_t shard,
                       const std::unordered_set<std::string>& hot_keys);

  uint32_t num_shards() const { return static_cast<uint32_t>(shards_.size()); }
  uint32_t num_workers() const {
    return static_cast<uint32_t>(workers_.size());
  }
  Shard* shard(uint32_t i) { return shards_[i].get(); }
  Router* router() { return router_.get(); }

  // ---- Stats --------------------------------------------------------------

  ShardStatsSnapshot ShardStatsOf(uint32_t i) const {
    return shards_[i]->stats().Snapshot();
  }
  /// \brief Sum over shards. Exact only when workers are quiescent.
  ShardStatsSnapshot TotalShardStats() const;
  EngineStatsSnapshot engine_stats() const;

 private:
  /// Completion state shared by one Execute call and the involved workers.
  struct BatchState {
    const RequestBatch* batch = nullptr;
    BatchResult* out = nullptr;
    /// Sub-batches still running. Decremented with acq_rel: the release
    /// half publishes this worker's result writes, the acquire half makes
    /// every earlier worker's writes visible to whichever worker ends up
    /// last — which then signals the client under `mu`, completing the
    /// happens-before chain from all result slots to the gatherer.
    std::atomic<uint32_t> pending{0};
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
  };

  /// The fragment of a batch bound for one shard.
  struct SubBatch {
    BatchState* state = nullptr;
    std::vector<uint32_t> indexes;  // into state->batch, ascending
  };

  /// One per shard; MPSC — many Execute callers push, one worker pops.
  struct ShardQueue {
    std::mutex mu;
    std::deque<SubBatch> work;
  };

  /// One per worker thread.
  struct Worker {
    std::thread thread;
    std::mutex mu;
    std::condition_variable cv;
    std::atomic<uint64_t> queued{0};  // sub-batches across owned shards
    std::vector<uint32_t> shards;     // owned shard ids
  };

  ShardedEngine() = default;

  /// Routes one request, teaching the router on first-seen insert keys.
  Result<uint32_t> RouteRequest(const Request& request);
  void WorkerLoop(Worker* worker);
  void RunSubBatch(Shard* shard, const SubBatch& sub);

  ShardedEngineOptions options_;
  std::unique_ptr<Router> router_;
  /// Guards router_ state: shared for Route, exclusive for Learn.
  mutable SharedLatch route_latch_;
  uint64_t next_placement_ = 0;  // round-robin cursor; under exclusive latch

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<ShardQueue>> queues_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> stop_{false};

  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> routing_failures_{0};
};

}  // namespace nblb
