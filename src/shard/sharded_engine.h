// ShardedEngine: the serving layer — N shards, a pluggable router, a fixed
// worker pool draining per-shard queues, and a submit/completion front end.
//
// Request lifecycle (see src/shard/README.md for the long version):
//
//   client thread                          worker thread (owns shard s)
//   ─────────────                          ────────────────────────────
//   Submit(batch, fn) → Ticket
//     route every id        ── semid::Router, shared-mode latch
//     split into per-shard
//       sub-batches
//     enqueue + wake owner  ──────────────▶ coalesce up to `window` queued
//     return Ticket                          sub-batches into one service
//       (caller keeps going)                 group, run ops on shard
//                                            (single-writer), write
//                                            results[i] slots
//                           ◀────────────── last worker drops pending to 0:
//   Ticket::Wait()/TryWait()                 callback → completion pool,
//     or completion fn fires                 else mark ticket done
//
// The blocking Execute(batch) of PR 1/2 survives as a thin wrapper —
// Submit + Wait — with identical results and result ordering.
//
// Adaptive batching: each shard queue carries a coalesce window in
// [min_coalesce_window, max_coalesce_window]. A worker serves up to
// `window` queued sub-batches as ONE group — consecutive kGets are merged
// across sub-batch boundaries into single Shard::GetBatch calls (longer
// B+Tree descent sharing and preadv runs), still segmented at every write
// so per-shard order is preserved. The window doubles when the observed
// queue depth reaches it and halves when the queue runs near-empty:
// Nagle-style, throughput under load, latency when idle. A non-zero
// drain_deadline_us additionally lets a worker hold a sub-window backlog
// briefly, giving concurrent submitters time to top the group up.
//
// Threading model: every shard is statically owned by exactly one worker
// (worker = shard % num_workers), so shard-local state (Table, B+Tree,
// IndexCache) is single-threaded by construction and needs no locks. The
// only cross-thread state is (a) the router, guarded by a SharedLatch —
// shared mode for the read-mostly Route calls, exclusive only when an
// insert teaches a TableRouter a new placement — (b) the atomic ticket
// bookkeeping, and (c) the completion queue feeding the completion pool.
//
// Any number of client threads may call Submit/Execute concurrently.

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/latch.h"
#include "common/result.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "semid/routing.h"
#include "shard/request.h"
#include "shard/shard.h"

namespace nblb {

/// \brief Engine-wide configuration.
struct ShardedEngineOptions {
  uint32_t num_shards = 4;
  /// Worker threads; 0 means one per shard. Shards are statically assigned
  /// worker = shard_id % num_workers.
  uint32_t num_workers = 0;
  /// Completion threads: callbacks passed to Submit fire here, off the
  /// worker threads, so a slow callback cannot stall a shard. 0 runs
  /// callbacks inline on the finishing worker (use 1 for strictly FIFO
  /// callback dispatch order).
  uint32_t num_completion_threads = 2;
  /// Shard i's backing file is "<path_prefix>.shard<i>.db". With
  /// truncate_on_open (default), existing files under this prefix are
  /// removed and recreated on Open — use a distinct prefix per engine.
  std::string path_prefix = "/tmp/nblb_engine";
  /// Forwarded to ShardOptions::truncate: false refuses to open a prefix
  /// whose shard files already exist instead of destroying them.
  bool truncate_on_open = true;
  size_t page_size = kDefaultPageSize;
  /// Per-shard buffer pool capacity (scale-out model: each shard models a
  /// node with its own fixed RAM budget).
  size_t buffer_pool_frames_per_shard = 4096;
  /// O_DIRECT shard files (see DiskManager): serving misses cost real I/O.
  bool direct_io = false;
  /// Adaptive coalesce window bounds and drain deadline, forwarded to each
  /// shard's ShardOptions (see shard.h for semantics).
  size_t min_coalesce_window = 1;
  size_t max_coalesce_window = 32;
  uint32_t drain_deadline_us = 0;
  /// Async I/O engine and flusher knobs, forwarded to every shard (see
  /// storage/disk_manager.h and exec/database.h). Reads and write-back
  /// share the backend and queue-depth budget; sync_writeback is the
  /// per-page-pwrite measurement baseline.
  IoBackend io_backend = IoBackend::kAuto;
  size_t io_queue_depth = 64;
  size_t io_threads = 4;
  uint64_t flusher_interval_us = 0;
  size_t flush_batch_pages = 64;
  bool sync_writeback = false;
  /// Backpressure: bound on each shard queue's depth in sub-batches. 0
  /// (default) keeps the queues unbounded, as before. With a bound, an
  /// over-limit Submit either blocks until the owning worker drains below
  /// the limit (default) or fails fast with kBusy results for the affected
  /// requests (busy_fail_fast) — so an unbounded open-loop client can no
  /// longer grow the queues without limit.
  size_t max_queue_depth = 0;
  /// With max_queue_depth: true = fail over-limit sub-batches immediately
  /// with Status::Busy per request; false = block the submitter.
  bool busy_fail_fast = false;
  /// Sampled request tracing (see obs/trace.h): every Nth sub-batch across
  /// the engine carries a TraceContext recording per-phase spans (queue
  /// wait, service, device wait, copy, ...) into the "trace.*" histograms
  /// of DumpMetrics(). 0 disables tracing; NBLB_OBS_OFF in the environment
  /// forces it off regardless.
  uint64_t trace_sample_every = 0;
  /// Durability (forwarded to ShardOptions::wal_enabled): every shard gets
  /// a superblock sidecar + write-ahead log, each service group is group-
  /// committed before its tickets complete, and Open with
  /// truncate_on_open=false recovers existing shards (clean reattach or
  /// crash recovery + WAL replay). See storage/wal.h and shard.h.
  bool wal_enabled = false;
  /// With wal_enabled: the owning worker runs a durable checkpoint on each
  /// shard every N service groups, bounding WAL length and replay time.
  /// 0 disables periodic checkpoints (only open/close publish).
  uint64_t checkpoint_every_groups = 0;
  /// Forwarded to ShardOptions::semid_partition_bits (persisted in the
  /// superblock; 0 = unused).
  uint32_t semid_partition_bits = 0;
  Schema schema;
  TableOptions table_options;
};

/// \brief Engine-level counters (atomics; relaxed — see shard_stats.h for
/// the memory-ordering rationale, which applies unchanged here).
struct EngineStatsSnapshot {
  uint64_t batches = 0;   ///< completed batches (Submit and Execute alike)
  uint64_t requests = 0;  ///< requests in completed batches
  uint64_t routing_failures = 0;
  uint64_t async_submits = 0;  ///< Submit calls with a completion callback
  /// Requests rejected kBusy by fail-fast backpressure (max_queue_depth).
  uint64_t busy_rejections = 0;
};

/// \brief Owns the shards, the router, the worker pool, and the completion
/// pool.
class ShardedEngine {
 public:
  /// \brief Fires on the completion pool once every request in the batch
  /// has a result. The BatchResult reference is valid for the duration of
  /// the callback; Ticket::result() holds the same object afterwards.
  using CompletionFn = std::function<void(const BatchResult&)>;

  /// \brief Handle to one submitted batch. Created by Submit; completion is
  /// observable three ways: the CompletionFn, Wait(), or TryWait().
  class Ticket {
   public:
    /// \brief Blocks until every request has a result and the completion
    /// callback (if any) has returned. Idempotent — calling after
    /// completion returns immediately.
    void Wait();
    /// \brief Non-blocking probe: true iff the batch has completed (and
    /// the callback, if any, has returned).
    bool TryWait();
    /// \brief The batch's results, in submission order. Valid only after
    /// Wait() returned or TryWait() returned true.
    const BatchResult& result() const { return result_; }
    /// \brief Moves the results out (same validity rule as result()).
    BatchResult TakeResult() { return std::move(result_); }

   private:
    friend class ShardedEngine;
    Ticket() = default;
    /// Releases the batch and the callback closure (nothing reads them
    /// after completion), then flips done_ and wakes waiters.
    void MarkDone();

    RequestBatch owned_batch_;               // Submit moves the batch here
    const RequestBatch* batch_ = nullptr;    // owned_batch_, or the
                                             // caller's batch for
                                             // Execute/SubmitRef; null
                                             // once done
    BatchResult result_;
    CompletionFn on_complete_;
    /// Sub-batches still running. Decremented with acq_rel: the release
    /// half publishes this worker's result writes, the acquire half makes
    /// every earlier worker's writes visible to whichever worker ends up
    /// last — which then completes the ticket, extending the
    /// happens-before chain from all result slots to the callback/waiter.
    std::atomic<uint32_t> pending_{0};
    /// True when any of this ticket's sub-batches was trace-sampled; the
    /// completion-dispatch span (finished_at_ -> callback) is then recorded.
    /// Written at Submit (before fan-out) and by the finishing worker, read
    /// by the completion thread — both handoffs are through mutexes.
    bool traced_ = false;
    std::chrono::steady_clock::time_point finished_at_{};
    std::mutex mu_;
    std::condition_variable cv_;
    bool done_ = false;
  };
  using TicketPtr = std::shared_ptr<Ticket>;

  /// \brief Builds shards and starts workers. `router` may be nullptr, in
  /// which case a HashRouter over num_shards is used. The router's
  /// partitions are folded onto shards modulo num_shards, so an
  /// EmbeddedRouter with more partitions than shards still works.
  static Result<std::unique_ptr<ShardedEngine>> Open(
      ShardedEngineOptions options, std::unique_ptr<Router> router = nullptr);

  /// \brief Joins workers and completion threads. Every submitted ticket
  /// completes first; must not race with concurrent Submit/Execute calls.
  ~ShardedEngine();
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  // ---- Serving ------------------------------------------------------------

  /// \brief Asynchronous submission: routes on the calling thread, enqueues
  /// per-shard sub-batches, and returns immediately. `on_complete` (may be
  /// nullptr) fires on the completion pool once every request has a result;
  /// the returned Ticket supports Wait()/TryWait() regardless. Thread safe.
  /// Results are in batch order; per-shard execution preserves batch order,
  /// but requests routed to different shards execute in parallel with no
  /// mutual ordering.
  TicketPtr Submit(RequestBatch batch, CompletionFn on_complete = nullptr);

  /// \brief As Submit, but references the caller-owned batch instead of
  /// copying it. `batch` must stay alive and unmodified until the ticket
  /// completes (callback returned / Wait() returned / TryWait() true) —
  /// the natural fit for drivers that keep a stable vector of batches in
  /// flight (see workload/replay.h's open-loop driver).
  TicketPtr SubmitRef(const RequestBatch& batch,
                      CompletionFn on_complete = nullptr);

  /// \brief Blocking convenience: Submit + Wait, without copying the batch.
  /// Identical results and result ordering to the pre-async Execute.
  BatchResult Execute(const RequestBatch& batch);

  /// \brief Single-op conveniences (one-element batches; for hot loops,
  /// batch yourself — the queue round-trip is paid per batch × shard).
  Status Insert(uint64_t id, Row row);
  Result<Row> Get(uint64_t id);
  Result<Row> GetProjected(uint64_t id, std::vector<size_t> projection);
  Status Update(uint64_t id, Row row);
  Status Delete(uint64_t id);

  // ---- Placement / topology ----------------------------------------------

  /// \brief Where `id` would be served (shared-mode router read).
  Result<uint32_t> RouteOf(uint64_t id) const;

  /// \brief Switches one shard to hot/cold partitioned mode (§3.1). Call
  /// only while no batches are in flight.
  Status EnableHotCold(uint32_t shard,
                       const std::unordered_set<std::string>& hot_keys);

  /// \brief The options the engine was opened with (the network front end
  /// derives its global admission cap from max_queue_depth).
  const ShardedEngineOptions& options() const { return options_; }

  uint32_t num_shards() const { return static_cast<uint32_t>(shards_.size()); }
  uint32_t num_workers() const {
    return static_cast<uint32_t>(workers_.size());
  }
  Shard* shard(uint32_t i) { return shards_[i].get(); }
  Router* router() { return router_.get(); }

  // ---- Stats --------------------------------------------------------------

  ShardStatsSnapshot ShardStatsOf(uint32_t i) const {
    return shards_[i]->stats().Snapshot();
  }
  /// \brief Sum over shards. Exact only when workers are quiescent.
  ShardStatsSnapshot TotalShardStats() const;
  EngineStatsSnapshot engine_stats() const;

  /// \brief One merged snapshot over every layer: "engine.*" and "trace.*"
  /// from the engine's own registry plus each shard's Database registry
  /// ("shard<i>.disk.*", "shard<i>.buffer_pool.*", "shard<i>.shard.*").
  MetricsSnapshot MetricsSnapshotNow() const;

  /// \brief MetricsSnapshotNow() serialized as one JSON document.
  std::string DumpMetrics() const { return MetricsSnapshotNow().ToJson(); }

  /// \brief The trace sink (per-phase histograms + recent-trace ring).
  const TraceAggregator& tracer() const { return *tracer_; }

 private:
  /// The fragment of a batch bound for one shard.
  struct SubBatch {
    TicketPtr ticket;
    std::vector<uint32_t> indexes;  // into ticket->batch_, ascending
    std::chrono::steady_clock::time_point enqueued;
    /// Non-null iff this sub-batch was trace-sampled. Stamped by the
    /// submitter before queue publication; written only by the serving
    /// worker afterwards (single-writer — see obs/trace.h).
    std::unique_ptr<TraceContext> trace;
  };

  /// One per shard; MPSC — many submitters push, one worker pops.
  struct ShardQueue {
    std::mutex mu;
    std::deque<SubBatch> work;
    /// Mirrors work.size() so the owning worker's drain-deadline predicate
    /// can peek without taking `mu` inside its own cv wait.
    std::atomic<size_t> size{0};
    /// Adaptive coalesce target, clamped to the shard's
    /// [min_coalesce_window, max_coalesce_window]. Touched only by the
    /// owning worker.
    size_t window = 1;
    /// Service groups since the last periodic checkpoint (wal_enabled +
    /// checkpoint_every_groups). Touched only by the owning worker.
    uint64_t groups_since_checkpoint = 0;
    /// Signaled by the owning worker after each pop when max_queue_depth
    /// bounds this queue; blocked submitters wait here for space.
    std::condition_variable space_cv;
  };

  /// One per worker thread.
  struct Worker {
    std::thread thread;
    std::mutex mu;
    std::condition_variable cv;
    std::atomic<uint64_t> queued{0};  // sub-batches across owned shards
    std::vector<uint32_t> shards;     // owned shard ids
  };

  ShardedEngine() = default;

  /// Routes one request, teaching the router on first-seen insert keys.
  Result<uint32_t> RouteRequest(const Request& request);
  /// Shared by Submit and Execute: routes, fans out, pre-arms pending_.
  void SubmitTicket(const TicketPtr& ticket);
  /// Counts the batch, then dispatches the callback to the completion pool
  /// (or completes inline when there is none / no pool).
  void FinishTicket(const TicketPtr& ticket);
  /// Records the finish -> callback dispatch span of a traced ticket.
  void RecordCompletionSpan(const TicketPtr& ticket);
  void WorkerLoop(Worker* worker);
  void CompletionLoop();
  /// Pops up to `window` sub-batches off shard `sid`'s queue (honoring the
  /// drain deadline), adapts the window, and serves them as one group.
  /// Returns true if anything ran.
  bool ServeShard(Worker* worker, uint32_t sid, std::vector<SubBatch>* group);
  void RunGroup(Shard* shard, std::vector<SubBatch>* group);

  ShardedEngineOptions options_;
  std::unique_ptr<Router> router_;
  /// Guards router_ state: shared for Route, exclusive for Learn.
  mutable SharedLatch route_latch_;
  uint64_t next_placement_ = 0;  // round-robin cursor; under exclusive latch

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<ShardQueue>> queues_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> stop_{false};

  std::vector<std::thread> completion_threads_;
  std::mutex completion_mu_;
  std::condition_variable completion_cv_;
  std::deque<TicketPtr> completions_;
  bool completion_stop_ = false;  // under completion_mu_

  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> routing_failures_{0};
  std::atomic<uint64_t> async_submits_{0};
  std::atomic<uint64_t> busy_rejections_{0};

  /// True iff trace_sample_every > 0 and NBLB_OBS_OFF is not set (resolved
  /// once at Open). With tracing off, Submit skips the sampler entirely.
  bool tracing_ = false;
  std::atomic<uint64_t> trace_counter_{0};  // sampler: 1-in-N sub-batches
  std::unique_ptr<TraceAggregator> tracer_;
  /// Engine-level registry ("engine.*", "trace.*"). Declared after the
  /// atomics/tracer it points into so it is destroyed first.
  std::unique_ptr<MetricsRegistry> metrics_;
};

}  // namespace nblb
