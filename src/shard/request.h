// Request/response types for the sharded serving layer.
//
// A RequestBatch is the unit clients hand to ShardedEngine::Submit (async,
// completion callback + ticket) or Execute (blocking wrapper): the engine
// routes each request to its home shard, fans the batch out to the
// per-shard queues, and delivers one RequestResult per request, in batch
// order. Batching is what makes the thread handoff affordable: the queue
// round-trip is paid once per (batch × shard), not once per operation —
// and queued sub-batches are further coalesced per shard (see
// sharded_engine.h).

#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "catalog/value.h"
#include "common/result.h"

namespace nblb {

/// \brief Operations the engine can serve.
enum class RequestKind : uint8_t {
  kGet = 0,           ///< full-row point lookup by ID
  kGetProjected = 1,  ///< projected point lookup (index-cache eligible)
  kInsert = 2,        ///< insert a full row
  kUpdate = 3,        ///< replace the non-key columns of an existing row
  kDelete = 4,        ///< remove a row by ID
};

/// \brief One operation. `id` is the routing key and must equal the row's
/// primary-key value (the engine serves tables with a single int64 key).
struct Request {
  RequestKind kind = RequestKind::kGet;
  uint64_t id = 0;
  Row row;                         ///< kInsert / kUpdate only
  std::vector<size_t> projection;  ///< kGetProjected only

  static Request Get(uint64_t id) {
    Request r;
    r.kind = RequestKind::kGet;
    r.id = id;
    return r;
  }

  static Request GetProjected(uint64_t id, std::vector<size_t> projection) {
    Request r;
    r.kind = RequestKind::kGetProjected;
    r.id = id;
    r.projection = std::move(projection);
    return r;
  }

  static Request Insert(uint64_t id, Row row) {
    Request r;
    r.kind = RequestKind::kInsert;
    r.id = id;
    r.row = std::move(row);
    return r;
  }

  static Request Update(uint64_t id, Row row) {
    Request r;
    r.kind = RequestKind::kUpdate;
    r.id = id;
    r.row = std::move(row);
    return r;
  }

  static Request Delete(uint64_t id) {
    Request r;
    r.kind = RequestKind::kDelete;
    r.id = id;
    return r;
  }
};

using RequestBatch = std::vector<Request>;

/// \brief Outcome of one request. `row` is filled for successful lookups.
struct RequestResult {
  Status status;
  Row row;
  uint32_t shard = 0;  ///< shard that served (or would have served) it
};

/// \brief Results of a batch, 1:1 with the submitted requests.
struct BatchResult {
  std::vector<RequestResult> results;

  /// \brief True iff every request succeeded.
  bool all_ok() const {
    for (const auto& r : results) {
      if (!r.status.ok()) return false;
    }
    return true;
  }
};

}  // namespace nblb
