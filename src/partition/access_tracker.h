// AccessTracker: per-tuple access frequency tracking (§3.1).
//
// "Other applications may have different policies, or require automated
//  tools to keep track of access patterns." — this is that tool. Two
// implementations share an interface: an exact counter map (ground truth for
// experiments) and a count-min sketch (bounded memory, what a production
// system would deploy). The tracker answers the one question clustering
// needs: which tuple ids are hot?

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/logging.h"

namespace nblb {

/// \brief Interface for access-frequency trackers keyed by tuple id.
class AccessTracker {
 public:
  virtual ~AccessTracker() = default;

  /// \brief Records one access to tuple `tid`.
  virtual void RecordAccess(uint64_t tid) = 0;

  /// \brief Estimated access count for `tid`.
  virtual uint64_t EstimateCount(uint64_t tid) const = 0;

  /// \brief Total recorded accesses.
  virtual uint64_t total() const = 0;
};

/// \brief Exact per-tuple counters (unbounded memory).
class ExactAccessTracker : public AccessTracker {
 public:
  void RecordAccess(uint64_t tid) override {
    ++counts_[tid];
    ++total_;
  }

  uint64_t EstimateCount(uint64_t tid) const override {
    auto it = counts_.find(tid);
    return it == counts_.end() ? 0 : it->second;
  }

  uint64_t total() const override { return total_; }

  /// \brief Tuple ids covering at least `mass` of all accesses, hottest
  /// first (the hot-set identification step of §3.1).
  std::vector<uint64_t> HotSetByMass(double mass) const;

  /// \brief The `k` most accessed tuple ids, hottest first.
  std::vector<uint64_t> TopK(size_t k) const;

  size_t distinct() const { return counts_.size(); }

 private:
  std::unordered_map<uint64_t, uint64_t> counts_;
  uint64_t total_ = 0;
};

/// \brief Count-min sketch tracker: fixed memory, overestimates only.
class SketchAccessTracker : public AccessTracker {
 public:
  /// \param width  counters per row (power of two recommended)
  /// \param depth  number of hash rows
  SketchAccessTracker(size_t width, size_t depth);

  void RecordAccess(uint64_t tid) override;
  uint64_t EstimateCount(uint64_t tid) const override;
  uint64_t total() const override { return total_; }

  size_t MemoryBytes() const {
    return rows_.size() * sizeof(uint32_t);
  }

 private:
  size_t Index(uint64_t tid, size_t row) const;

  size_t width_;
  size_t depth_;
  std::vector<uint32_t> rows_;  // depth_ * width_
  uint64_t total_ = 0;
};

}  // namespace nblb
