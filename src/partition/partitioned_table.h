// PartitionedTable: a hot partition + a cold partition behind one lookup API
// (§3.1's "Partition" configuration).
//
// "Creating a partition for hot tuples reduces query costs by 8.4×. The
//  reason partitioning has such a profound impact is that reducing the index
//  size ... allows the entire index to fit in RAM."
//
// Lookups try the (tiny) hot index first and fall back to cold — with the
// paper's 99.9% hot access share, the cold index is almost never touched.

#pragma once

#include <atomic>
#include <memory>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "exec/table.h"

namespace nblb {

/// \brief Lookup counters per partition.
///
/// Counters are atomics so they can be *read* (e.g. by a stats poller or the
/// shard engine's aggregator) while another thread executes lookups. All
/// accesses use memory_order_relaxed: each counter is an independent
/// monotonic event count — no other memory is published through it, so no
/// acquire/release pairing is needed, and relaxed keeps the increment a
/// plain atomic add on the lookup path. Cross-counter snapshots are only
/// exact once writers are quiesced (e.g. after joining worker threads, which
/// synchronizes-with everything the workers did).
struct PartitionedTableStats {
  std::atomic<uint64_t> lookups{0};
  std::atomic<uint64_t> hot_hits{0};
  std::atomic<uint64_t> cold_hits{0};
  std::atomic<uint64_t> misses{0};

  void Reset() {
    lookups.store(0, std::memory_order_relaxed);
    hot_hits.store(0, std::memory_order_relaxed);
    cold_hits.store(0, std::memory_order_relaxed);
    misses.store(0, std::memory_order_relaxed);
  }
};

/// \brief Two physical tables (hot / cold) with a common schema.
class PartitionedTable {
 public:
  /// \brief Builds hot/cold partitions by scanning `source` and routing each
  /// row by membership of its encoded key in `hot_keys`.
  ///
  /// The partitions are created in `bp` with the same schema/options as the
  /// source (the source table is left untouched).
  static Result<std::unique_ptr<PartitionedTable>> BuildFromTable(
      BufferPool* bp, Table* source,
      const std::unordered_set<std::string>& hot_encoded_keys);

  /// \brief Projected lookup: hot partition first, then cold.
  Result<Row> LookupProjected(const std::vector<Value>& key_values,
                              const std::vector<size_t>& project_columns);

  /// \brief Batched full-row lookups: one hot-partition batch probe
  /// (shared B+Tree descent, vectored/async heap miss I/O via
  /// Table::GetBatchByKey), then a single cold-partition batch over the
  /// hot misses. Pushes one Result per key onto `out`, in input order;
  /// per-key NotFound lands in `out` and the returned Status covers
  /// infrastructure failures only.
  Status GetBatchByKey(const std::vector<std::vector<Value>>& keys,
                       std::vector<Result<Row>>* out);

  /// \brief Inserts into the hot partition and, if `displaced_key` is
  /// non-null, demotes that row to the cold partition — the paper's policy
  /// for Wikipedia revisions ("newly inserted revision tuples can replace the
  /// previously hot tuple for the same page, which is then moved to the cold
  /// partition").
  Status InsertHot(const Row& row, const std::vector<Value>* displaced_key);

  Table* hot() { return hot_.get(); }
  Table* cold() { return cold_.get(); }
  const PartitionedTableStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

 private:
  PartitionedTable() = default;

  std::unique_ptr<Table> hot_;
  std::unique_ptr<Table> cold_;
  PartitionedTableStats stats_;
};

}  // namespace nblb
