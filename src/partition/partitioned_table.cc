#include "partition/partitioned_table.h"

#include "common/logging.h"

namespace nblb {

Result<std::unique_ptr<PartitionedTable>> PartitionedTable::BuildFromTable(
    BufferPool* bp, Table* source,
    const std::unordered_set<std::string>& hot_encoded_keys) {
  std::unique_ptr<PartitionedTable> pt(new PartitionedTable());
  NBLB_ASSIGN_OR_RETURN(
      auto hot, Table::Create(bp, source->schema(), source->options()));
  NBLB_ASSIGN_OR_RETURN(
      auto cold, Table::Create(bp, source->schema(), source->options()));
  pt->hot_ = std::move(hot);
  pt->cold_ = std::move(cold);

  NBLB_RETURN_NOT_OK(source->ForEachRow([&](const Rid&, const Row& row) {
    auto keyres = source->key_codec().EncodeFromRow(row);
    NBLB_RETURN_NOT_OK(keyres.status());
    if (hot_encoded_keys.count(*keyres)) {
      return pt->hot_->Insert(row);
    }
    return pt->cold_->Insert(row);
  }));
  return pt;
}

Result<Row> PartitionedTable::LookupProjected(
    const std::vector<Value>& key_values,
    const std::vector<size_t>& project_columns) {
  stats_.lookups.fetch_add(1, std::memory_order_relaxed);
  auto hot_result = hot_->LookupProjected(key_values, project_columns);
  if (hot_result.ok()) {
    stats_.hot_hits.fetch_add(1, std::memory_order_relaxed);
    return hot_result;
  }
  if (!hot_result.status().IsNotFound()) {
    return hot_result;  // real error
  }
  auto cold_result = cold_->LookupProjected(key_values, project_columns);
  if (cold_result.ok()) {
    stats_.cold_hits.fetch_add(1, std::memory_order_relaxed);
  } else if (cold_result.status().IsNotFound()) {
    stats_.misses.fetch_add(1, std::memory_order_relaxed);
  }
  return cold_result;
}

Status PartitionedTable::GetBatchByKey(
    const std::vector<std::vector<Value>>& keys,
    std::vector<Result<Row>>* out) {
  stats_.lookups.fetch_add(keys.size(), std::memory_order_relaxed);
  const size_t base = out->size();
  NBLB_RETURN_NOT_OK(hot_->GetBatchByKey(keys, out));
  // With the paper's access skew the cold pass is almost always empty —
  // one batch probe of the tiny hot index answers everything.
  std::vector<uint32_t> retry;
  std::vector<std::vector<Value>> cold_keys;
  for (size_t i = 0; i < keys.size(); ++i) {
    Result<Row>& r = (*out)[base + i];
    if (r.ok()) {
      stats_.hot_hits.fetch_add(1, std::memory_order_relaxed);
    } else if (r.status().IsNotFound()) {
      retry.push_back(static_cast<uint32_t>(i));
      cold_keys.push_back(keys[i]);
    }
    // Non-NotFound errors stay in place; the cold partition cannot answer
    // for a hot-side infrastructure failure.
  }
  if (retry.empty()) return Status::OK();
  std::vector<Result<Row>> cold_out;
  cold_out.reserve(retry.size());
  NBLB_RETURN_NOT_OK(cold_->GetBatchByKey(cold_keys, &cold_out));
  for (size_t k = 0; k < retry.size(); ++k) {
    if (cold_out[k].ok()) {
      stats_.cold_hits.fetch_add(1, std::memory_order_relaxed);
    } else if (cold_out[k].status().IsNotFound()) {
      stats_.misses.fetch_add(1, std::memory_order_relaxed);
    }
    (*out)[base + retry[k]] = std::move(cold_out[k]);
  }
  return Status::OK();
}

Status PartitionedTable::InsertHot(const Row& row,
                                   const std::vector<Value>* displaced_key) {
  NBLB_RETURN_NOT_OK(hot_->Insert(row));
  if (displaced_key != nullptr) {
    // Demote: move the displaced row from hot to cold.
    NBLB_ASSIGN_OR_RETURN(Row displaced, hot_->GetByKey(*displaced_key));
    NBLB_RETURN_NOT_OK(hot_->DeleteByKey(*displaced_key));
    NBLB_RETURN_NOT_OK(cold_->Insert(displaced));
  }
  return Status::OK();
}

}  // namespace nblb
