#include "partition/access_tracker.h"

#include <algorithm>

namespace nblb {

std::vector<uint64_t> ExactAccessTracker::HotSetByMass(double mass) const {
  NBLB_CHECK(mass >= 0 && mass <= 1);
  std::vector<std::pair<uint64_t, uint64_t>> by_count(counts_.begin(),
                                                      counts_.end());
  std::sort(by_count.begin(), by_count.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;  // deterministic tie-break
  });
  std::vector<uint64_t> hot;
  uint64_t acc = 0;
  const uint64_t target =
      static_cast<uint64_t>(mass * static_cast<double>(total_));
  for (const auto& [tid, count] : by_count) {
    if (acc >= target) break;
    hot.push_back(tid);
    acc += count;
  }
  return hot;
}

std::vector<uint64_t> ExactAccessTracker::TopK(size_t k) const {
  std::vector<std::pair<uint64_t, uint64_t>> by_count(counts_.begin(),
                                                      counts_.end());
  std::sort(by_count.begin(), by_count.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::vector<uint64_t> out;
  out.reserve(std::min(k, by_count.size()));
  for (size_t i = 0; i < by_count.size() && i < k; ++i) {
    out.push_back(by_count[i].first);
  }
  return out;
}

SketchAccessTracker::SketchAccessTracker(size_t width, size_t depth)
    : width_(width), depth_(depth), rows_(width * depth, 0) {
  NBLB_CHECK(width > 0 && depth > 0);
}

size_t SketchAccessTracker::Index(uint64_t tid, size_t row) const {
  // Distinct 64-bit mixers per row via splitmix-style finalization with a
  // row-dependent offset.
  uint64_t z = tid + (row + 1) * 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z = z ^ (z >> 31);
  return row * width_ + static_cast<size_t>(z % width_);
}

void SketchAccessTracker::RecordAccess(uint64_t tid) {
  for (size_t r = 0; r < depth_; ++r) {
    uint32_t& c = rows_[Index(tid, r)];
    if (c != UINT32_MAX) ++c;
  }
  ++total_;
}

uint64_t SketchAccessTracker::EstimateCount(uint64_t tid) const {
  uint64_t best = UINT64_MAX;
  for (size_t r = 0; r < depth_; ++r) {
    best = std::min<uint64_t>(best, rows_[Index(tid, r)]);
  }
  return best == UINT64_MAX ? 0 : best;
}

}  // namespace nblb
