// ForwardingTable: old-RID -> new-RID redirection (§3.1).
//
// "note that this does require updating foreign key pointers and/or using
//  forwarding tables to redirect queries using old ids to the new tuples"
//
// Chains are collapsed on insert so Resolve is a single hop.

#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>

namespace nblb {

/// \brief Redirects stale tuple ids to their current location.
class ForwardingTable {
 public:
  /// \brief Records that `from` moved to `to`. Existing entries pointing at
  /// `from` are re-targeted to `to` (path compression on write).
  void AddForwarding(uint64_t from, uint64_t to);

  /// \brief Terminal location of `tid` (identity if never moved).
  uint64_t Resolve(uint64_t tid) const;

  /// \brief True if `tid` has a forwarding entry.
  bool IsForwarded(uint64_t tid) const { return map_.count(tid) != 0; }

  size_t size() const { return map_.size(); }

  /// \brief Approximate RAM footprint — the §4.2 argument against per-tuple
  /// routing tables is exactly this number growing with the table.
  size_t MemoryBytes() const {
    return map_.size() * (sizeof(uint64_t) * 2 + sizeof(void*));
  }

  void Clear() { map_.clear(); reverse_.clear(); }

 private:
  std::unordered_map<uint64_t, uint64_t> map_;
  // to -> list head of froms, enabling O(1) amortized path compression.
  std::unordered_multimap<uint64_t, uint64_t> reverse_;
};

}  // namespace nblb
