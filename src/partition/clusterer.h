// Clusterer: access-frequency-based horizontal clustering (§3.1).
//
// Relocates a chosen fraction of the hot set to the end of the table by
// delete-then-append (Table::Relocate), co-locating hot tuples on few pages.
// Figure 3's 0% / 54% / 100% bars are this knob.

#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "exec/table.h"
#include "partition/forwarding_table.h"

namespace nblb {

/// \brief Outcome of a clustering pass.
struct ClusterReport {
  uint64_t candidates = 0;   ///< hot tuples considered
  uint64_t relocated = 0;    ///< tuples actually moved
  uint64_t pages_before = 0; ///< heap pages before clustering
  uint64_t pages_after = 0;
};

/// \brief Relocates hot tuples so they share pages.
class Clusterer {
 public:
  /// \brief Moves the first `fraction` of `hot_keys` (assumed hottest-first)
  /// to the end of `table`'s heap. Records old->new RID forwardings in `fwd`
  /// when non-null.
  ///
  /// \param hot_keys  primary-key values of the hot tuples
  /// \param fraction  share of the hot set to relocate, in [0, 1]
  static Result<ClusterReport> ClusterHotTuples(
      Table* table, const std::vector<std::vector<Value>>& hot_keys,
      double fraction, ForwardingTable* fwd = nullptr);
};

}  // namespace nblb
