#include "partition/clusterer.h"

#include "common/logging.h"

namespace nblb {

Result<ClusterReport> Clusterer::ClusterHotTuples(
    Table* table, const std::vector<std::vector<Value>>& hot_keys,
    double fraction, ForwardingTable* fwd) {
  if (fraction < 0 || fraction > 1) {
    return Status::InvalidArgument("fraction must be in [0,1]");
  }
  ClusterReport report;
  report.candidates = hot_keys.size();
  report.pages_before = table->heap()->pages().size();

  const size_t to_move = static_cast<size_t>(
      fraction * static_cast<double>(hot_keys.size()) + 0.5);
  for (size_t i = 0; i < to_move && i < hot_keys.size(); ++i) {
    // Remember the old location for forwarding before the move.
    uint64_t old_tid = 0;
    if (fwd != nullptr) {
      auto keyres = table->key_codec().EncodeValues(hot_keys[i]);
      NBLB_RETURN_NOT_OK(keyres.status());
      auto tidres = table->index()->Get(Slice(*keyres));
      NBLB_RETURN_NOT_OK(tidres.status());
      old_tid = *tidres;
    }
    NBLB_ASSIGN_OR_RETURN(Rid new_rid, table->Relocate(hot_keys[i]));
    if (fwd != nullptr) {
      fwd->AddForwarding(old_tid, new_rid.ToU64());
    }
    ++report.relocated;
  }
  report.pages_after = table->heap()->pages().size();
  return report;
}

}  // namespace nblb
