#include "partition/forwarding_table.h"

#include <vector>

namespace nblb {

void ForwardingTable::AddForwarding(uint64_t from, uint64_t to) {
  // Re-target every entry currently resolving to `from`.
  auto range = reverse_.equal_range(from);
  std::vector<uint64_t> stale;
  for (auto it = range.first; it != range.second; ++it) {
    stale.push_back(it->second);
  }
  reverse_.erase(from);
  for (uint64_t f : stale) {
    map_[f] = to;
    reverse_.emplace(to, f);
  }
  map_[from] = to;
  reverse_.emplace(to, from);
}

uint64_t ForwardingTable::Resolve(uint64_t tid) const {
  auto it = map_.find(tid);
  return it == map_.end() ? tid : it->second;
}

}  // namespace nblb
