#!/usr/bin/env python3
"""Bench regression gate: compare a fresh bench JSON against the committed
baseline and fail (exit 1) if hit-regime throughput regressed by more than
the allowed ratio.

Usage:
    check_bench_regression.py --baseline BENCH_shard_throughput.json \
        --current smoke_shard_throughput.json [--min-ratio 0.75] \
        [--obs-off-current smoke_obs_off.json [--obs-min-ratio 0.97]]

Each bench schema in this repo registers declaratively in the BENCHES
table at the bottom of this file: one gate function (throughput ratios +
error checks against the baseline) and one metrics validator (schema check
of the embedded unified-registry document). Adding a fourth bench is two
functions and one table row. Only hit-regime points are gated: miss-regime
throughput is device-bound and too noisy across runner hardware, and
smoke-size runs have different miss profiles than full-size baselines.

The gate is on the GEOMETRIC MEAN of the per-config throughput ratios
across hit-regime configs — single configs (especially single-client
points) swing +-25% run to run on small machines, but a fleet-wide drop
below min-ratio is a real regression. Any single config below
min-ratio * CATASTROPHIC_FACTOR fails outright.

Error counts are gated unconditionally: any serving error in any regime
fails the job.

The CURRENT file's embedded unified-metrics documents (see src/obs/) are
schema-validated unconditionally: every section present, histogram shape
intact (count == sum(buckets)), and the layer coverage the serving stack
promises (engine./trace./shard<i>.disk|buffer_pool|shard.* for
shard_throughput; scan_disk./churn_disk./churn_buffer_pool.* for
buffer_pool_scan). A bench JSON without its metrics document fails.

--obs-off-current enables the OBSERVABILITY OVERHEAD gate: a second
current-tree shard_throughput JSON produced with NBLB_OBS_OFF=1 (tracing,
flight recorder and registry hooks compiled in but disabled). The
geometric-mean hit-regime ratio instrumented/obs-off must stay >=
--obs-min-ratio (default 0.97): instrumentation costing more than ~3% of
hit-path throughput is a regression in its own right.
"""

import argparse
import json
import math
import sys

DEFAULT_MIN_RATIO = 0.75  # fail on a >25% hit-regime throughput drop
CATASTROPHIC_FACTOR = 0.6  # per-config hard floor = min_ratio * this
HIT_REGIME_MIN_RATE = 0.90
DEFAULT_OBS_MIN_RATIO = 0.97  # instrumentation may cost at most ~3%

HISTOGRAM_FIELDS = ("count", "p50", "p90", "p99", "max", "buckets")


def fail(msg):
    print(f"REGRESSION GATE FAILED: {msg}", file=sys.stderr)
    sys.exit(1)


def gate_ratios(bench, ratios, min_ratio):
    """Common verdict: geometric-mean gate + per-config catastrophic floor."""
    if not ratios:
        # A gate with nothing to gate is a silent no-op — fail loudly so a
        # baseline/sweep drift can't turn CI green by vacuity.
        fail(f"{bench}: no hit-regime configs comparable between baseline "
             f"and current (baseline drifted or sweep changed?)")
    floor = min_ratio * CATASTROPHIC_FACTOR
    for key, ratio in ratios.items():
        if ratio < floor:
            fail(f"{bench} {key}: hit-regime throughput collapsed to "
                 f"{ratio:.2f}x of baseline (hard floor {floor:.2f}x)")
    geomean = math.exp(sum(math.log(max(r, 1e-9)) for r in ratios.values())
                       / len(ratios))
    print(f"  geometric mean over {len(ratios)} hit-regime configs: "
          f"x{geomean:.2f} (min {min_ratio:.2f})")
    if geomean < min_ratio:
        fail(f"{bench}: hit-regime throughput geomean dropped to "
             f"{geomean:.2f}x of baseline (allowed >= {min_ratio:.2f}x)")


def validate_metrics_document(context, doc):
    """Schema check of one unified-registry document (MetricsSnapshot::ToJson):
    three sections, integral counters, numeric gauges, histograms with the
    full field set and internally consistent bucket sums."""
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(doc.get(section), dict):
            fail(f"{context}: metrics document missing '{section}' object")
    for name, value in doc["counters"].items():
        if not isinstance(value, int) or value < 0:
            fail(f"{context}: counter {name} is not a non-negative integer: "
                 f"{value!r}")
    for name, value in doc["gauges"].items():
        if not isinstance(value, (int, float)):
            fail(f"{context}: gauge {name} is not numeric: {value!r}")
    for name, hist in doc["histograms"].items():
        for field in HISTOGRAM_FIELDS:
            if field not in hist:
                fail(f"{context}: histogram {name} missing '{field}'")
        if not isinstance(hist["buckets"], list) or not hist["buckets"]:
            fail(f"{context}: histogram {name} has no buckets array")
        if sum(hist["buckets"]) != hist["count"]:
            fail(f"{context}: histogram {name} bucket sum "
                 f"{sum(hist['buckets'])} != count {hist['count']}")


def validate_trace_object(context, trace):
    """A per-phase sampled-tracing breakdown: a sample count plus
    {count,p50,p99,max} per phase that recorded anything."""
    if "sampled" not in trace:
        fail(f"{context}: trace object missing 'sampled'")
    for phase, stats in trace.items():
        if phase == "sampled":
            continue
        for field in ("count", "p50", "p99", "max"):
            if field not in stats:
                fail(f"{context}: trace phase {phase} missing '{field}'")


def validate_shard_metrics(current):
    """Every config of a shard_throughput JSON must embed the unified
    document covering engine, trace, and every shard's storage + serving
    layers, plus per-phase trace breakdowns."""
    print("  validating embedded metrics documents...")
    for c in current["configs"]:
        key = (c["shards"], c["workers"])
        context = f"shard_throughput {key}"
        doc = c.get("metrics")
        if doc is None:
            fail(f"{context}: no embedded metrics document")
        validate_metrics_document(context, doc)
        counters = doc["counters"]
        for name in ("engine.batches", "engine.requests", "trace.sampled"):
            if name not in counters:
                fail(f"{context}: metrics document missing counter {name}")
        for s in range(c["shards"]):
            for suffix in ("disk.reads", "buffer_pool.hits", "shard.gets"):
                if f"shard{s}.{suffix}" not in counters:
                    fail(f"{context}: metrics document missing counter "
                         f"shard{s}.{suffix}")
            if f"shard{s}.buffer_pool.hit_rate" not in doc["gauges"]:
                fail(f"{context}: missing gauge shard{s}.buffer_pool.hit_rate")
            if f"shard{s}.shard.queue_depth" not in doc["histograms"]:
                fail(f"{context}: missing histogram "
                     f"shard{s}.shard.queue_depth")
        for phase in ("queue_wait", "service", "end_to_end"):
            if f"trace.{phase}_us" not in doc["histograms"]:
                fail(f"{context}: missing histogram trace.{phase}_us")
        if "trace" not in c:
            fail(f"{context}: closed phase has no 'trace' breakdown")
        validate_trace_object(f"{context} closed", c["trace"])
        open_loop = c.get("open_loop")
        if open_loop is not None:
            if "trace" not in open_loop:
                fail(f"{context}: open_loop phase has no 'trace' breakdown")
            validate_trace_object(f"{context} open_loop", open_loop["trace"])
    print(f"  metrics documents OK across {len(current['configs'])} configs")


def validate_buffer_pool_metrics(current):
    """A buffer_pool_scan JSON carries one document spanning the scan and
    churn DiskManagers plus the final churn BufferPool."""
    print("  validating embedded metrics document...")
    doc = current.get("metrics")
    if doc is None:
        fail("buffer_pool_scan: no embedded metrics document")
    validate_metrics_document("buffer_pool_scan", doc)
    for name in ("scan_disk.reads", "churn_disk.writes",
                 "churn_buffer_pool.dirty_writebacks",
                 "churn_buffer_pool.flusher_pages"):
        if name not in doc["counters"]:
            fail(f"buffer_pool_scan: metrics document missing counter {name}")
    if "churn_buffer_pool.hit_rate" not in doc["gauges"]:
        fail("buffer_pool_scan: missing gauge churn_buffer_pool.hit_rate")
    print("  metrics document OK")


def check_obs_overhead(current, obs_off, min_ratio):
    """Instrumented vs NBLB_OBS_OFF=1 runs of the SAME tree: hit-regime
    throughput with observability on must stay >= min_ratio of the
    obs-off run (geomean, same fleet logic as the main gate)."""
    off_by_key = {(c["shards"], c["workers"]): c for c in obs_off["configs"]}
    ratios = {}
    for c in current["configs"]:
        key = (c["shards"], c["workers"])
        off = off_by_key.get(key)
        if off is None:
            print(f"  {key}: no obs-off config, skipping")
            continue
        if off.get("bp_hit_rate", 0.0) < HIT_REGIME_MIN_RATE:
            print(f"  {key}: obs-off miss-regime "
                  f"(bp_hit_rate={off.get('bp_hit_rate', 0.0):.3f}), "
                  f"not gated")
            continue
        ratio = (c["ops_per_sec"] / off["ops_per_sec"]
                 if off["ops_per_sec"] else 0)
        ratios[key] = ratio
        print(f"  {key}: instrumented {c['ops_per_sec']:.0f} vs obs-off "
              f"{off['ops_per_sec']:.0f} ops/s (x{ratio:.2f})")
    gate_ratios("obs-overhead", ratios, min_ratio)


def check_shard_throughput(baseline, current, min_ratio):
    base_by_key = {(c["shards"], c["workers"]): c for c in baseline["configs"]}
    cur_by_key = {(c["shards"], c["workers"]): c for c in current["configs"]}
    ratios = {}
    for key, cur in sorted(cur_by_key.items()):
        if cur.get("errors", 0) != 0:
            fail(f"shard_throughput {key}: closed-loop errors={cur['errors']}")
        open_loop = cur.get("open_loop")
        if open_loop and open_loop.get("errors", 0) != 0:
            fail(f"shard_throughput {key}: open-loop errors={open_loop['errors']}")
        for phase in ("mixed_sync", "mixed"):
            mixed = cur.get(phase)
            if mixed and mixed.get("errors", 0) != 0:
                fail(f"shard_throughput {key}: {phase} errors={mixed['errors']}")
        base = base_by_key.get(key)
        if base is None:
            print(f"  {key}: no baseline config, skipping throughput gate")
            continue
        # Gate only configurations that were hit-regime in the baseline.
        base_hit_rate = base.get("bp_hit_rate", 0.0)
        if base_hit_rate < HIT_REGIME_MIN_RATE:
            print(f"  {key}: baseline miss-regime "
                  f"(bp_hit_rate={base_hit_rate:.3f}), not gated")
            continue
        ratio = cur["ops_per_sec"] / base["ops_per_sec"] if base["ops_per_sec"] else 0
        ratios[key] = ratio
        print(f"  {key}: closed-loop {cur['ops_per_sec']:.0f} vs baseline "
              f"{base['ops_per_sec']:.0f} ops/s (x{ratio:.2f})")
        if open_loop:
            open_ratio = (open_loop["ops_per_sec"] / cur["ops_per_sec"]
                          if cur["ops_per_sec"] else 0)
            print(f"  {key}: open-loop {open_loop['ops_per_sec']:.0f} ops/s "
                  f"({open_ratio:.2f}x closed, inflight="
                  f"{open_loop.get('inflight', '?')})")
    gate_ratios("shard_throughput", ratios, min_ratio)


def check_buffer_pool(baseline, current, min_ratio):
    def key_of(entry):
        return (entry["pool"], entry["stripes"], entry["threads"],
                entry["mode"])

    base_by_key = {key_of(e): e for e in baseline.get("hit", [])}
    ratios = {}
    for cur in current.get("hit", []):
        base = base_by_key.get(key_of(cur))
        if base is None:
            continue
        ratio = cur["ops_per_sec"] / base["ops_per_sec"] if base["ops_per_sec"] else 0
        ratios[key_of(cur)] = ratio
        print(f"  {key_of(cur)}: {cur['ops_per_sec']:.0f} vs baseline "
              f"{base['ops_per_sec']:.0f} ops/s (x{ratio:.2f})")
    gate_ratios("buffer_pool_scan", ratios, min_ratio)


def check_net_serving(baseline, current, min_ratio):
    """Loopback-serving gate: zero transport/serving errors anywhere, the
    overload phase actually shed (busy replies flowed), and net-phase
    throughput held against the baseline."""
    for phase in ("inprocess", "net"):
        if phase not in current:
            fail(f"net_serving: missing '{phase}' phase")
        if current[phase].get("errors", 0) != 0:
            fail(f"net_serving {phase}: errors={current[phase]['errors']}")
    overload = current.get("overload")
    if overload is not None:
        if overload.get("errors", 0) != 0:
            fail(f"net_serving overload: errors={overload['errors']}")
        if overload.get("busy", 0) == 0:
            fail("net_serving overload: over-driven phase recorded zero busy "
                 "replies — admission control did not engage")
    cur_net = current["net"]
    base_net = baseline.get("net")
    if base_net is None:
        fail("net_serving: baseline has no 'net' phase")
    ratio = (cur_net["ops_per_sec"] / base_net["ops_per_sec"]
             if base_net["ops_per_sec"] else 0)
    print(f"  net: {cur_net['ops_per_sec']:.0f} vs baseline "
          f"{base_net['ops_per_sec']:.0f} ops/s (x{ratio:.2f}), "
          f"p99 {cur_net.get('p99_batch_ms', 0):.3f} ms")
    print(f"  net vs in-process: x{cur_net.get('ratio_vs_inprocess', 0):.2f} "
          f"(loopback cost, informational)")
    gate_ratios("net_serving", {"net": ratio}, min_ratio)


def validate_net_metrics(current):
    """A net_serving JSON embeds the server's merged document: the net.*
    layer plus the serving engine's full document underneath it."""
    print("  validating embedded metrics document...")
    doc = current.get("metrics")
    if doc is None:
        fail("net_serving: no embedded metrics document")
    validate_metrics_document("net_serving", doc)
    counters = doc["counters"]
    for name in ("net.accepts", "net.frames_in", "net.frames_out",
                 "net.responses", "net.busy_shed", "net.decode_errors",
                 "engine.batches", "engine.requests"):
        if name not in counters:
            fail(f"net_serving: metrics document missing counter {name}")
    for name in ("net.open_connections", "net.inflight"):
        if name not in doc["gauges"]:
            fail(f"net_serving: missing gauge {name}")
    for name in ("net.reply_latency_us", "net.batch_requests"):
        if name not in doc["histograms"]:
            fail(f"net_serving: missing histogram {name}")
    for s in range(current.get("shards", 0)):
        if f"shard{s}.disk.reads" not in counters:
            fail(f"net_serving: metrics document missing counter "
                 f"shard{s}.disk.reads")
    print("  metrics document OK")


# ---- Bench registry ---------------------------------------------------------
# One row per bench JSON schema: gate(baseline, current, min_ratio) holds
# throughput/error behavior against the committed baseline; validate(current)
# schema-checks the embedded unified-metrics document. New benches register
# here — main() needs no changes.
def check_recovery(baseline, current, min_ratio):
    """Durability gate: zero serving errors in both configs, the WAL-on /
    WAL-off overhead ratio held, WAL-on throughput held against the
    baseline, and every replay point actually recovered its full tail at a
    sane rate."""
    serve = current.get("serve")
    if serve is None:
        fail("recovery: missing 'serve' phase")
    for config in ("wal_off", "wal_on"):
        if config not in serve:
            fail(f"recovery: serve phase missing '{config}'")
        if serve[config].get("errors", 0) != 0:
            fail(f"recovery {config}: errors={serve[config]['errors']}")
    overhead = serve.get("wal_overhead_ratio", 0)
    print(f"  wal overhead: x{overhead:.3f} of wal-off throughput")
    # The overhead ratio is current-tree vs current-tree (same machine, same
    # run), so it is far less noisy than cross-run throughput — gate it at
    # the catastrophic floor: group commit silently degrading to
    # fsync-per-batch shows up as a collapse here, not a 10% drift.
    if overhead < min_ratio * CATASTROPHIC_FACTOR:
        fail(f"recovery: wal_overhead_ratio x{overhead:.3f} below floor "
             f"x{min_ratio * CATASTROPHIC_FACTOR:.3f} — durability is no "
             f"longer riding group commit")
    base_serve = baseline.get("serve", {}).get("wal_on")
    if base_serve is None:
        fail("recovery: baseline has no serve.wal_on")
    ratio = (serve["wal_on"]["ops_per_sec"] / base_serve["ops_per_sec"]
             if base_serve["ops_per_sec"] else 0)
    print(f"  wal-on serve: {serve['wal_on']['ops_per_sec']:.0f} vs baseline "
          f"{base_serve['ops_per_sec']:.0f} ops/s (x{ratio:.2f})")

    points = current.get("replay")
    if not isinstance(points, list) or len(points) < 3:
        fail("recovery: expected >=3 replay tail-length points")
    for p in points:
        tail = p.get("tail_records", 0)
        if p.get("replayed_records", -1) != tail:
            fail(f"recovery replay tail={tail}: replayed "
                 f"{p.get('replayed_records')} records, expected {tail}")
        if p.get("replay_mb_per_sec", 0) <= 0:
            fail(f"recovery replay tail={tail}: non-positive replay rate")
        print(f"  replay tail={tail}: {p['replay_mb_per_sec']:.1f} MB/s, "
              f"first get {p.get('time_to_first_get_ms', 0):.1f} ms")
    gate_ratios("recovery", {"wal_on": ratio}, min_ratio)


def validate_recovery_metrics(current):
    """A recovery JSON embeds the WAL-on serve engine's merged document:
    the per-shard wal.* layer on top of the usual engine/shard layers."""
    print("  validating embedded metrics document...")
    doc = current.get("metrics")
    if doc is None:
        fail("recovery: no embedded metrics document")
    validate_metrics_document("recovery", doc)
    counters = doc["counters"]
    if "engine.batches" not in counters:
        fail("recovery: metrics document missing counter engine.batches")
    for s in range(current.get("shards", 0)):
        for layer in ("wal.appends", "wal.commits", "wal.bytes_appended",
                      "wal.commit_micros", "shard.coalesced_groups"):
            name = f"shard{s}.{layer}"
            if name not in counters:
                fail(f"recovery: metrics document missing counter {name}")
        if counters[f"shard{s}.wal.commits"] == 0:
            fail(f"recovery: shard{s} recorded zero WAL commits in the "
                 f"wal-on serve run")
    print("  metrics document OK")


BENCHES = {
    "shard_throughput": (check_shard_throughput, validate_shard_metrics),
    "buffer_pool_scan": (check_buffer_pool, validate_buffer_pool_metrics),
    "net_serving": (check_net_serving, validate_net_metrics),
    "recovery": (check_recovery, validate_recovery_metrics),
}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--min-ratio", type=float, default=DEFAULT_MIN_RATIO)
    parser.add_argument("--obs-off-current", default=None,
                        help="shard_throughput JSON from an NBLB_OBS_OFF=1 "
                             "run of the current tree; enables the "
                             "observability-overhead gate")
    parser.add_argument("--obs-min-ratio", type=float,
                        default=DEFAULT_OBS_MIN_RATIO)
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.current) as f:
        current = json.load(f)

    if baseline.get("bench") != current.get("bench"):
        fail(f"bench kind mismatch: baseline={baseline.get('bench')} "
             f"current={current.get('bench')}")

    bench = current.get("bench")
    print(f"gating {bench}: current={args.current} vs "
          f"baseline={args.baseline} (min ratio {args.min_ratio:.2f})")
    spec = BENCHES.get(bench)
    if spec is None:
        fail(f"unknown bench kind: {bench} (registered: "
             f"{', '.join(sorted(BENCHES))})")
    gate, validate = spec
    gate(baseline, current, args.min_ratio)
    validate(current)

    if args.obs_off_current:
        if bench != "shard_throughput":
            fail("--obs-off-current only applies to shard_throughput")
        with open(args.obs_off_current) as f:
            obs_off = json.load(f)
        if obs_off.get("bench") != bench:
            fail(f"obs-off bench kind mismatch: {obs_off.get('bench')}")
        print(f"obs-overhead gate: instrumented={args.current} vs "
              f"obs-off={args.obs_off_current} "
              f"(min ratio {args.obs_min_ratio:.2f})")
        check_obs_overhead(current, obs_off, args.obs_min_ratio)

    print("regression gate passed")


if __name__ == "__main__":
    main()
