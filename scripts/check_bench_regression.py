#!/usr/bin/env python3
"""Bench regression gate: compare a fresh bench JSON against the committed
baseline and fail (exit 1) if hit-regime throughput regressed by more than
the allowed ratio.

Usage:
    check_bench_regression.py --baseline BENCH_shard_throughput.json \
        --current smoke_shard_throughput.json [--min-ratio 0.75]

Handles both bench schemas in this repo ("shard_throughput" and
"buffer_pool_scan"), matching comparable configurations between the two
files. Only hit-regime points are gated: miss-regime throughput is
device-bound and too noisy across runner hardware, and smoke-size runs have
different miss profiles than full-size baselines.

The gate is on the GEOMETRIC MEAN of the per-config throughput ratios
across hit-regime configs — single configs (especially single-client
points) swing +-25% run to run on small machines, but a fleet-wide drop
below min-ratio is a real regression. Any single config below
min-ratio * CATASTROPHIC_FACTOR fails outright.

Error counts are gated unconditionally: any serving error in any regime
fails the job.
"""

import argparse
import json
import math
import sys

DEFAULT_MIN_RATIO = 0.75  # fail on a >25% hit-regime throughput drop
CATASTROPHIC_FACTOR = 0.6  # per-config hard floor = min_ratio * this
HIT_REGIME_MIN_RATE = 0.90


def fail(msg):
    print(f"REGRESSION GATE FAILED: {msg}", file=sys.stderr)
    sys.exit(1)


def gate_ratios(bench, ratios, min_ratio):
    """Common verdict: geometric-mean gate + per-config catastrophic floor."""
    if not ratios:
        # A gate with nothing to gate is a silent no-op — fail loudly so a
        # baseline/sweep drift can't turn CI green by vacuity.
        fail(f"{bench}: no hit-regime configs comparable between baseline "
             f"and current (baseline drifted or sweep changed?)")
    floor = min_ratio * CATASTROPHIC_FACTOR
    for key, ratio in ratios.items():
        if ratio < floor:
            fail(f"{bench} {key}: hit-regime throughput collapsed to "
                 f"{ratio:.2f}x of baseline (hard floor {floor:.2f}x)")
    geomean = math.exp(sum(math.log(max(r, 1e-9)) for r in ratios.values())
                       / len(ratios))
    print(f"  geometric mean over {len(ratios)} hit-regime configs: "
          f"x{geomean:.2f} (min {min_ratio:.2f})")
    if geomean < min_ratio:
        fail(f"{bench}: hit-regime throughput geomean dropped to "
             f"{geomean:.2f}x of baseline (allowed >= {min_ratio:.2f}x)")


def check_shard_throughput(baseline, current, min_ratio):
    base_by_key = {(c["shards"], c["workers"]): c for c in baseline["configs"]}
    cur_by_key = {(c["shards"], c["workers"]): c for c in current["configs"]}
    ratios = {}
    for key, cur in sorted(cur_by_key.items()):
        if cur.get("errors", 0) != 0:
            fail(f"shard_throughput {key}: closed-loop errors={cur['errors']}")
        open_loop = cur.get("open_loop")
        if open_loop and open_loop.get("errors", 0) != 0:
            fail(f"shard_throughput {key}: open-loop errors={open_loop['errors']}")
        for phase in ("mixed_sync", "mixed"):
            mixed = cur.get(phase)
            if mixed and mixed.get("errors", 0) != 0:
                fail(f"shard_throughput {key}: {phase} errors={mixed['errors']}")
        base = base_by_key.get(key)
        if base is None:
            print(f"  {key}: no baseline config, skipping throughput gate")
            continue
        # Gate only configurations that were hit-regime in the baseline.
        base_hit_rate = base.get("bp_hit_rate", 0.0)
        if base_hit_rate < HIT_REGIME_MIN_RATE:
            print(f"  {key}: baseline miss-regime "
                  f"(bp_hit_rate={base_hit_rate:.3f}), not gated")
            continue
        ratio = cur["ops_per_sec"] / base["ops_per_sec"] if base["ops_per_sec"] else 0
        ratios[key] = ratio
        print(f"  {key}: closed-loop {cur['ops_per_sec']:.0f} vs baseline "
              f"{base['ops_per_sec']:.0f} ops/s (x{ratio:.2f})")
        if open_loop:
            open_ratio = (open_loop["ops_per_sec"] / cur["ops_per_sec"]
                          if cur["ops_per_sec"] else 0)
            print(f"  {key}: open-loop {open_loop['ops_per_sec']:.0f} ops/s "
                  f"({open_ratio:.2f}x closed, inflight="
                  f"{open_loop.get('inflight', '?')})")
    gate_ratios("shard_throughput", ratios, min_ratio)


def check_buffer_pool(baseline, current, min_ratio):
    def key_of(entry):
        return (entry["pool"], entry["stripes"], entry["threads"],
                entry["mode"])

    base_by_key = {key_of(e): e for e in baseline.get("hit", [])}
    ratios = {}
    for cur in current.get("hit", []):
        base = base_by_key.get(key_of(cur))
        if base is None:
            continue
        ratio = cur["ops_per_sec"] / base["ops_per_sec"] if base["ops_per_sec"] else 0
        ratios[key_of(cur)] = ratio
        print(f"  {key_of(cur)}: {cur['ops_per_sec']:.0f} vs baseline "
              f"{base['ops_per_sec']:.0f} ops/s (x{ratio:.2f})")
    gate_ratios("buffer_pool_scan", ratios, min_ratio)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--min-ratio", type=float, default=DEFAULT_MIN_RATIO)
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.current) as f:
        current = json.load(f)

    if baseline.get("bench") != current.get("bench"):
        fail(f"bench kind mismatch: baseline={baseline.get('bench')} "
             f"current={current.get('bench')}")

    bench = current.get("bench")
    print(f"gating {bench}: current={args.current} vs "
          f"baseline={args.baseline} (min ratio {args.min_ratio:.2f})")
    if bench == "shard_throughput":
        check_shard_throughput(baseline, current, args.min_ratio)
    elif bench == "buffer_pool_scan":
        check_buffer_pool(baseline, current, args.min_ratio)
    else:
        fail(f"unknown bench kind: {bench}")
    print("regression gate passed")


if __name__ == "__main__":
    main()
